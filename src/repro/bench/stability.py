"""Stability benchmark: windowed throughput, stall blame, tail latency.

Runs one sustained hash load plus one mixed YCSB-A phase per engine with a
:class:`~repro.obs.stability.StabilityProbe` attached, and emits the
``BENCH_stability.json`` stability baseline:

* ``python -m repro stability`` runs the suite, prints the table and (with
  ``--update``) rewrites ``BENCH_stability.json``;
* ``benchmarks/stability/`` is the standalone entry point;
* ``--check`` (used by CI) fails when windowed-throughput variance, the
  worst window, the stall-time fraction or any op class's p99.9 regresses
  against the committed baseline.

Unlike ``BENCH_perf.json`` (wall-clock, machine-dependent), everything here
is *simulated*: same seed, same report, byte for byte, on any machine --
so the check tolerances guard against behavioral regressions (a scheduling
change that makes writes burstier), not runner noise.  The report therefore
carries no host fields (no wall time, no platform string).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from repro.obs.sampler import DEFAULT_INTERVAL_S

if TYPE_CHECKING:
    from repro.db.iamdb import IamDB

#: Where the committed stability baseline lives (repo root).
BENCH_STABILITY_FILENAME = "BENCH_stability.json"

#: Engine name -> §6.2 legend config (single-threaded variants: stall
#: behavior is the subject here, not background parallelism).
ENGINES: Dict[str, str] = {
    "iam": "I-1t",
    "lsa": "A-1t",
    "leveldb": "L",
}

DEFAULT_RECORDS = 30_000
DEFAULT_OPS = 8_000
DEFAULT_SEED = 11

#: Phase keys in run order (load first: YCSB runs against the loaded tree).
PHASES = ("load", "ycsb_a")

#: Checked digests and their direction: ``+`` means higher-is-worse
#: (ceiling), ``-`` means lower-is-worse (floor).
_THROUGHPUT_CHECKS = (
    ("mean_ops_s", "-"),
    ("cv", "+"),
    ("min_window_ops_s", "-"),
)


def run_engine(engine: str, *, records: int = DEFAULT_RECORDS,
               ops: int = DEFAULT_OPS, seed: int = DEFAULT_SEED,
               interval_s: float = DEFAULT_INTERVAL_S,
               trace_path: Optional[str] = None,
               validate: bool = False) -> Dict[str, object]:
    """One engine's stability run: sustained load, then mixed YCSB-A.

    Returns ``{"load": <window report>, "ycsb_a": <window report>}`` (see
    :meth:`~repro.obs.stability.StabilityProbe.window_report`).

    ``trace_path`` additionally wires a tracer into the run and writes a
    Chrome trace there (the probe's sampler provides the counter tracks);
    tracing is observation-only, so the report is unchanged by it.
    """
    from repro.bench.scale import SSD_100G, make_db
    from repro.obs.stability import StabilityProbe
    from repro.workloads.dbbench import hash_load
    from repro.workloads.runner import run_ycsb
    from repro.workloads.ycsb import YCSB_WORKLOADS

    db = make_db(ENGINES[engine], SSD_100G)
    tracer = None
    if trace_path is not None:
        from repro.obs.tracer import TraceOptions, Tracer

        tracer = Tracer(db.runtime.clock, TraceOptions())
        db.runtime.attach_tracer(tracer)
    probe = StabilityProbe(db, interval_s)
    phases: Dict[str, object] = {}

    mark = probe.mark()
    hash_load(db, records, quiesce=True)
    phases["load"] = probe.window_report(mark)

    mark = probe.mark()
    run_ycsb(db, YCSB_WORKLOADS["A"], ops, records, seed=seed)
    db.quiesce()
    phases["ycsb_a"] = probe.window_report(mark)

    if tracer is not None and trace_path is not None:
        from repro.obs.export import chrome_trace, validate_chrome_trace, write_json

        trace = chrome_trace(tracer, probe.sampler,
                             process_name=f"stability:{engine}")
        if validate:
            problems = validate_chrome_trace(trace)
            if problems:
                raise ValueError(
                    f"stability trace failed validation: {problems[:3]}")
        write_json(trace_path, trace)
    db.close()
    return phases


def run_suite(engines: Optional[Sequence[str]] = None, *,
              records: int = DEFAULT_RECORDS, ops: int = DEFAULT_OPS,
              seed: int = DEFAULT_SEED,
              interval_s: float = DEFAULT_INTERVAL_S,
              trace_path: Optional[str] = None,
              validate: bool = False) -> Dict[str, object]:
    """Run the stability suite; returns the full BENCH_stability report.

    The report is deterministic: same config, same bytes (no wall-clock or
    platform fields) -- ``tests/test_stability.py`` pins this down.  When
    ``trace_path`` is given, only the first engine's run is traced.
    """
    names = list(engines) if engines else list(ENGINES)
    out: Dict[str, object] = {}
    for i, name in enumerate(names):
        out[name] = run_engine(
            name, records=records, ops=ops, seed=seed, interval_s=interval_s,
            trace_path=trace_path if i == 0 else None, validate=validate)
    return {
        "schema": 1,
        "generated_by": "python -m repro stability",
        "config": {
            "records": records,
            "ops": ops,
            "seed": seed,
            "interval_s": interval_s,
            "workload": "A",
            "setup": "SSD-100G",
            "engines": names,
        },
        "engines": out,
    }


def _phase_digest(report: Mapping[str, object], engine: str,
                  phase: str) -> Optional[Mapping[str, object]]:
    engines = report.get("engines")
    if not isinstance(engines, Mapping):
        return None
    per_engine = engines.get(engine)
    if not isinstance(per_engine, Mapping):
        return None
    digest = per_engine.get(phase)
    return digest if isinstance(digest, Mapping) else None


def _num(container: Mapping[str, object], *path: str) -> Optional[float]:
    node: object = container
    for key in path:
        if not isinstance(node, Mapping):
            return None
        node = node.get(key)
    return float(node) if isinstance(node, (int, float)) else None


def check_stability(report: Dict[str, object], baseline_path: Path, *,
                    max_regression: float = 0.25) -> List[str]:
    """Compare a fresh report against the committed baseline.

    Returns failure messages (empty = pass).  A missing baseline or a
    config mismatch is itself a failure, so CI can never silently skip the
    comparison.  Per engine and phase the gate holds:

    * ``mean_ops_s`` and ``min_window_ops_s`` above a ``1 - tol`` floor;
    * windowed-throughput ``cv`` and the ``stall_fraction`` below a
      ``(1 + tol) + 0.01`` ceiling (the additive slack keeps near-zero
      baselines from forbidding any stall at all);
    * every op class's p99.9 below a ``1 + tol`` ceiling.
    """
    if not baseline_path.exists():
        return [f"no baseline at {baseline_path}"]
    baseline = json.loads(baseline_path.read_text())
    base_cfg = baseline.get("config") or {}
    cur_cfg = report.get("config") or {}
    if base_cfg != cur_cfg:
        diffs = sorted(k for k in set(base_cfg) | set(cur_cfg)
                       if base_cfg.get(k) != cur_cfg.get(k))
        return [f"config mismatch vs baseline ({', '.join(diffs)}); "
                "rerun with the baseline's scale or --update"]

    failures: List[str] = []
    for engine in cur_cfg.get("engines", []):
        for phase in PHASES:
            base = _phase_digest(baseline, engine, phase)
            cur = _phase_digest(report, engine, phase)
            where = f"{engine}/{phase}"
            if base is None or cur is None:
                failures.append(f"{where}: missing from "
                                f"{'baseline' if base is None else 'report'}")
                continue
            for key, sign in _THROUGHPUT_CHECKS:
                b = _num(base, "throughput", key)
                c = _num(cur, "throughput", key)
                if b is None or c is None:
                    continue
                if sign == "-":
                    floor = b * (1.0 - max_regression)
                    if c < floor:
                        failures.append(
                            f"{where}: {key} regressed: {c:,.1f} < {floor:,.1f} "
                            f"(baseline {b:,.1f} - {max_regression:.0%})")
                else:
                    ceil = b * (1.0 + max_regression) + 0.01
                    if c > ceil:
                        failures.append(
                            f"{where}: {key} regressed: {c:.4f} > {ceil:.4f} "
                            f"(baseline {b:.4f} + {max_regression:.0%})")
            b = _num(base, "stalls", "stall_fraction")
            c = _num(cur, "stalls", "stall_fraction")
            if b is not None and c is not None:
                ceil = b * (1.0 + max_regression) + 0.01
                if c > ceil:
                    failures.append(
                        f"{where}: stall_fraction regressed: {c:.4f} > "
                        f"{ceil:.4f} (baseline {b:.4f} + {max_regression:.0%})")
            base_lat = base.get("latency")
            cur_lat = cur.get("latency")
            if isinstance(base_lat, Mapping) and isinstance(cur_lat, Mapping):
                for op in sorted(base_lat):
                    b = _num(base_lat, op, "p999")
                    c = _num(cur_lat, op, "p999")
                    if b is None or c is None:
                        continue
                    ceil = b * (1.0 + max_regression) + 1e-6
                    if c > ceil:
                        failures.append(
                            f"{where}: {op} p99.9 regressed: {c * 1e3:.4f}ms > "
                            f"{ceil * 1e3:.4f}ms (baseline {b * 1e3:.4f}ms "
                            f"+ {max_regression:.0%})")
    return failures


def format_report(report: Dict[str, object]) -> str:
    from repro.bench.report import format_table

    cfg = report.get("config") or {}
    rows: List[List[object]] = []
    for engine in cfg.get("engines", []):  # type: ignore[union-attr]
        for phase in PHASES:
            digest = _phase_digest(report, engine, phase)
            if digest is None:
                continue
            mean = _num(digest, "throughput", "mean_ops_s") or 0.0
            cv = _num(digest, "throughput", "cv") or 0.0
            worst = _num(digest, "throughput", "min_window_ops_s") or 0.0
            stall = _num(digest, "stalls", "stall_fraction") or 0.0
            lat = digest.get("latency")
            p999 = 0.0
            p999_op = "-"
            if isinstance(lat, Mapping):
                for op in sorted(lat):
                    v = _num(lat, op, "p999")
                    if v is not None and v > p999:
                        p999, p999_op = v, str(op)
            rows.append([engine, phase, f"{mean:,.0f}", f"{cv:.3f}",
                         f"{worst:,.0f}", f"{stall * 100:.1f}%",
                         f"{p999 * 1e3:.3f} ({p999_op})"])
    title = (f"stability: {cfg.get('records')} records load + "
             f"{cfg.get('ops')} YCSB-{cfg.get('workload')} ops, "
             f"seed {cfg.get('seed')} (sim time)")
    return format_table(
        ["engine", "phase", "mean ops/s", "cv", "worst win ops/s",
         "stall %", "p99.9 ms (op)"],
        rows, title=title)


def write_report(report: Dict[str, object], path: Path) -> None:
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point shared by ``python -m repro stability`` and benchmarks/."""
    import argparse

    p = argparse.ArgumentParser(
        prog="repro stability",
        description="windowed-throughput / stall-blame / tail-latency suite")
    p.add_argument("--engine", action="append", choices=list(ENGINES),
                   dest="engines",
                   help="run only this engine (repeatable; default: all)")
    p.add_argument("--records", type=int, default=DEFAULT_RECORDS,
                   help=f"records in the load phase (default {DEFAULT_RECORDS})")
    p.add_argument("--ops", type=int, default=DEFAULT_OPS,
                   help=f"YCSB-A ops in the mixed phase (default {DEFAULT_OPS})")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED,
                   help=f"workload seed (default {DEFAULT_SEED})")
    p.add_argument("--interval", type=float, default=DEFAULT_INTERVAL_S,
                   metavar="SIM_S",
                   help=f"sampler interval, sim seconds (default {DEFAULT_INTERVAL_S})")
    p.add_argument("--quick", action="store_true",
                   help="quarter-size run (not comparable to the baseline)")
    p.add_argument("--update", action="store_true",
                   help=f"write {BENCH_STABILITY_FILENAME}")
    p.add_argument("--check", action="store_true",
                   help="fail when stability regressed vs the committed baseline")
    p.add_argument("--max-regression", type=float, default=0.25,
                   help="tolerated relative regression (default 0.25)")
    p.add_argument("--out", type=Path, default=None,
                   help=f"baseline path (default ./{BENCH_STABILITY_FILENAME})")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write a Chrome trace of the first engine's run")
    p.add_argument("--validate", action="store_true",
                   help="schema-check the Chrome trace (requires --trace)")
    args = p.parse_args(argv)

    records, ops = args.records, args.ops
    if args.quick:
        records, ops = max(1000, records // 4), max(500, ops // 4)
    report = run_suite(args.engines, records=records, ops=ops,
                       seed=args.seed, interval_s=args.interval,
                       trace_path=args.trace, validate=args.validate)
    if args.trace:
        print(f"wrote Chrome trace of the first engine's run to {args.trace}")
    print(format_report(report))
    path = args.out if args.out is not None else Path(BENCH_STABILITY_FILENAME)
    rc = 0
    if args.check:
        failures = check_stability(report, path,
                                   max_regression=args.max_regression)
        for msg in failures:
            print(f"STABILITY REGRESSION: {msg}", file=sys.stderr)
        if failures:
            rc = 1
        else:
            print(f"\nstability check ok (within {args.max_regression:.0%} "
                  f"of {path})")
    if args.update:
        if args.quick:
            print("refusing to --update from a --quick run", file=sys.stderr)
            rc = rc or 2
        else:
            write_report(report, path)
            print(f"\nwrote {path}")
    return rc
