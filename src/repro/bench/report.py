"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Dict, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 *, title: str = "") -> str:
    """Render an aligned ASCII table (the way the paper's tables read)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.3f}" if abs(v) < 1000 else f"{v:.1f}"
    return str(v)


def normalize_to(baseline_key: str, values: Dict[str, float]) -> Dict[str, float]:
    """Normalize a metric dict to one entry (the paper normalizes to LevelDB)."""
    base = values.get(baseline_key, 0.0)
    if base == 0.0:
        return {k: 0.0 for k in values}
    return {k: v / base for k, v in values.items()}
