"""Microbenchmark engine for the simulator's hot-path kernels.

Times each optimized kernel against its frozen seed counterpart from
:mod:`repro.bench.reference` (memtable insert, k-way merge, page-cache block
accounting, workload key generation) plus one end-to-end scaled hash load,
and emits the ``BENCH_perf.json`` perf trajectory:

* ``python -m repro perf`` runs the suite, prints the table and (with
  ``--update``) rewrites ``BENCH_perf.json``;
* ``benchmarks/perf/perf_*.py`` are standalone entry points per kernel;
* ``--check`` (used by CI) fails when the end-to-end run regresses more than
  ``max_regression`` against the committed baseline.

Wall-clock numbers are machine-dependent: ``speedups`` (optimized vs
reference *on the same machine, same run*) are the stable signal, absolute
``ops_per_s`` the trajectory.  ``seed_baseline`` pins the pre-optimization
end-to-end measurement this PR started from.
"""

from __future__ import annotations

import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:
    from repro.cluster import ClusterDB
    from repro.db.iamdb import IamDB
from repro.check.effects.registry import effects

#: Where the committed perf trajectory lives (repo root).
BENCH_PERF_FILENAME = "BENCH_perf.json"

#: Pre-optimization numbers measured on the seed tree (same machine that
#: produced the first committed BENCH_perf.json); kept so every later report
#: still shows the before/after of the kernel rewrite.
SEED_BASELINE = {
    "end_to_end_hash_load": {"config": "I-1t", "setup": "SSD-100G",
                             "records": 91980, "seconds": 13.65,
                             "ops_per_s": 6738.0},
    "memtable_add_200k_ops_per_s": 64076.0,
    "merge_2way_200k_recs_per_s": 1108438.0,
    "pagecache_insert_range_blk_per_s": 1165218.0,
    "permute64_scalar_keys_per_s": 826641.0,
}


@effects("HOST_TIME")
def _time(fn: Callable[[], object], *, repeat: int = 3) -> float:
    """Best-of-``repeat`` wall seconds of one ``fn()`` call."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()  # repro: noqa-REP001 (host benchmark timer)
        fn()
        dt = time.perf_counter() - t0  # repro: noqa-REP001 (host benchmark timer)
        if dt < best:
            best = dt
    return best


def _entry(n_ops: int, seconds: float) -> Dict[str, float]:
    return {"n_ops": n_ops, "seconds": round(seconds, 6),
            "ops_per_s": round(n_ops / seconds, 1) if seconds > 0 else 0.0}


def _verify(cond: bool, msg: str) -> None:
    """Inline equivalence gate for the read benches (survives python -O)."""
    if not cond:
        from repro.common.errors import InvariantViolation

        raise InvariantViolation(msg)


# ------------------------------------------------------------------ memtable
def bench_memtable(quick: bool = False) -> Dict[str, Dict[str, float]]:
    from repro.bench.reference import ReferenceMemtable
    from repro.common.records import make_put
    from repro.memtable import Memtable

    # The reference is O(n^2) in element shifts, so the measured gap grows
    # with n; 250k keys is where the real flush-sized loads of a long run sit.
    n = 30_000 if quick else 250_000
    keys = list(range(n))
    random.Random(7).shuffle(keys)
    recs = [make_put(k, i + 1, 256) for i, k in enumerate(keys)]

    def load_reference() -> list:
        mt = ReferenceMemtable(16)
        for r in recs:
            mt.add(r)
        return mt.sorted_records()

    def load_add() -> list:
        mt = Memtable(16)
        for r in recs:
            mt.add(r)
        return mt.sorted_records()

    def load_add_many() -> list:
        mt = Memtable(16)
        mt.add_many(recs)
        return mt.sorted_records()

    out = {
        "memtable_bulk_load_reference": _entry(n, _time(load_reference, repeat=1)),
        "memtable_bulk_load_add": _entry(n, _time(load_add)),
        "memtable_bulk_load_add_many": _entry(n, _time(load_add_many)),
    }
    return out


# --------------------------------------------------------------------- merge
def bench_merge(quick: bool = False) -> Dict[str, Dict[str, float]]:
    from repro.bench.reference import reference_merge_runs
    from repro.common.records import sort_key
    from repro.table.merge import merge_runs

    n = 50_000 if quick else 200_000
    rng = random.Random(3)
    recs = [(rng.randrange(n // 2), s + 1,
             0 if rng.random() > 0.1 else 1, 256) for s in range(n)]
    half = n // 2
    runs2 = [sorted(recs[:half], key=sort_key), sorted(recs[half:], key=sort_key)]
    chunk = n // 5
    runs5 = [sorted(recs[i * chunk:(i + 1) * chunk], key=sort_key)
             for i in range(5)]
    snaps = [n // 3, n // 2]

    out = {
        "merge_2way_reference": _entry(n, _time(lambda: reference_merge_runs(runs2))),
        "merge_2way": _entry(n, _time(lambda: merge_runs(runs2))),
        "merge_5way_reference": _entry(n, _time(lambda: reference_merge_runs(runs5))),
        "merge_5way": _entry(n, _time(lambda: merge_runs(runs5))),
        "merge_2way_snapshots_reference": _entry(
            n, _time(lambda: reference_merge_runs(runs2, snapshots=snaps))),
        "merge_2way_snapshots": _entry(
            n, _time(lambda: merge_runs(runs2, snapshots=snaps))),
    }
    return out


# ----------------------------------------------------------------- pagecache
def bench_pagecache(quick: bool = False) -> Dict[str, Dict[str, float]]:
    from repro.bench.reference import ReferencePageCache
    from repro.storage.pagecache import PageCache

    reps = 15 if quick else 50
    files, blocks = 20, 500
    n = reps * files * blocks
    block_size = 1024
    fit_bytes = files * blocks * block_size     # everything fits
    tight_bytes = 4096 * block_size             # constant eviction pressure

    def drive_cold(cache_cls: type) -> None:
        # Fresh cache per rep: every insert_range is a cold whole-run
        # admission (the bg_write_run pattern).
        for _ in range(reps):
            cache = cache_cls(fit_bytes, block_size)
            for f in range(files):
                cache.insert_range(f, 0, blocks)

    @effects("HOST_TIME")
    def drive_touch(make_touch: Tuple[type, Callable[..., object]],
                    ) -> float:
        # Fully resident cache: the all-hits query read path.
        cache_cls, touch_all = make_touch
        cache = cache_cls(fit_bytes, block_size)
        for f in range(files):
            cache.insert_range(f, 0, blocks)
        t0 = time.perf_counter()  # repro: noqa-REP001 (host benchmark timer)
        for _ in range(reps):
            for f in range(files):
                touch_all(cache, f)
        return time.perf_counter() - t0  # repro: noqa-REP001 (host benchmark timer)

    def ref_touch_all(cache: Any, f: int) -> None:
        touch = cache.touch
        for b in range(blocks):
            touch(f, b)

    def drive_evicting(cache_cls: type) -> None:
        # 10k distinct blocks through a 4096-block cache: re-admission churn.
        cache = cache_cls(tight_bytes, block_size)
        for _ in range(reps):
            for f in range(files):
                cache.insert_range(f, 0, blocks)

    out = {
        "pagecache_cold_admission_reference": _entry(
            n, _time(lambda: drive_cold(ReferencePageCache), repeat=2)),
        "pagecache_cold_admission": _entry(
            n, _time(lambda: drive_cold(PageCache), repeat=2)),
        "pagecache_touch_reference": _entry(
            n, drive_touch((ReferencePageCache, ref_touch_all))),
        "pagecache_touch_range": _entry(
            n, drive_touch((PageCache,
                            lambda c, f: c.touch_range(f, 0, blocks)))),
        "pagecache_insert_evicting_reference": _entry(
            n, _time(lambda: drive_evicting(ReferencePageCache), repeat=2)),
        "pagecache_insert_evicting": _entry(
            n, _time(lambda: drive_evicting(PageCache), repeat=2)),
    }
    return out


# ----------------------------------------------------------------- workloads
def bench_workloads(quick: bool = False) -> Dict[str, Dict[str, float]]:
    from repro.workloads.distributions import (
        ScrambledZipfian,
        ZipfianGenerator,
        permute64,
        permute64_many,
    )

    n = 100_000 if quick else 400_000
    out = {
        "keygen_permute64_scalar": _entry(
            n, _time(lambda: [permute64(i) for i in range(n)], repeat=2)),
        "keygen_permute64_many": _entry(
            n, _time(lambda: permute64_many(range(n)))),
    }
    zn = 1_000_000
    k = n // 2
    z_scalar = ZipfianGenerator(zn, random.Random(5))
    z_vec = ZipfianGenerator(zn, random.Random(5))
    out["keygen_zipfian_scalar"] = _entry(
        k, _time(lambda: [z_scalar.sample() for _ in range(k)], repeat=1))
    out["keygen_zipfian_many"] = _entry(
        k, _time(lambda: z_vec.sample_many(k), repeat=1))
    s_scalar = ScrambledZipfian(zn, random.Random(6))
    s_vec = ScrambledZipfian(zn, random.Random(6))
    out["keygen_scrambled_scalar"] = _entry(
        k, _time(lambda: [s_scalar.sample() for _ in range(k)], repeat=1))
    out["keygen_scrambled_many"] = _entry(
        k, _time(lambda: s_vec.sample_many(k), repeat=1))
    return out


# --------------------------------------------------------------------- reads
def bench_reads(quick: bool = False) -> Dict[str, Dict[str, float]]:
    """Batched read kernels vs their frozen scalar references.

    Each comparison builds *two* identically-seeded stores, proves the
    batched path returns the same records at the same simulated clock as
    the scalar reference (a cheap inline echo of the hypothesis equivalence
    suite), then times both -- so the speedup is pure host-CPU savings on
    a workload with pinned simulated behaviour.
    """
    from repro.bench.reference import (
        reference_cluster_read_loop,
        reference_multi_get,
        reference_scan,
    )
    from repro.bench.scale import SSD_100G, make_db
    from repro.workloads.dbbench import hash_load
    from repro.workloads.distributions import permute64

    # Batch economics: the vectorized planners pay a fixed numpy cost per
    # (node, sequence) group the store shape forces them to touch, so the
    # speedup scales with reads per group -- batches are sized well above
    # the store's record count, like a YCSB-C read phase over a loaded DB.
    n_records = 2_000 if quick else 4_000
    n_reads = 8_000 if quick else 12_000

    def build_db() -> "IamDB":
        db = make_db("I-1t", SSD_100G)
        hash_load(db, n_records, quiesce=True)
        return db

    rng = random.Random(17)
    read_keys = [permute64(rng.randrange(n_records)) for _ in range(n_reads)]

    out: Dict[str, Dict[str, float]] = {}

    # ---- point lookups: multi_get vs the scalar per-key walk
    db_ref = build_db()
    db_opt = build_db()
    verify_keys = read_keys[:200]
    want = reference_multi_get(db_ref, verify_keys)
    got = db_opt.multi_get(verify_keys)
    _verify(want == got, "multi_get diverged from the scalar reference")
    _verify(db_ref.runtime.clock.now == db_opt.runtime.clock.now,  # repro: noqa-REP004 (exact sim-clock equivalence gate)
            "multi_get moved the simulated clock differently than the reference")
    out["read_multi_get_reference"] = _entry(
        n_reads, _time(lambda: reference_multi_get(db_ref, read_keys)))
    out["read_multi_get_batched"] = _entry(
        n_reads, _time(lambda: db_opt.multi_get(read_keys)))
    _verify(db_ref.runtime.clock.now == db_opt.runtime.clock.now,  # repro: noqa-REP004 (exact sim-clock equivalence gate)
            "timed multi_get runs ended at different simulated clocks")
    db_ref.close()
    db_opt.close()

    # ---- range scans: the vectorized plan/replay vs the generator merge
    # A leveled store over a compact key space (the composite-sort fast
    # path), five versions per key with a tombstone tail -- the shape where
    # the scalar merge burns a Python step on every superseded version
    # while the planner handles them as array ops.
    s_records = 6_000 if quick else 12_000
    n_scans = 6 if quick else 8
    scan_limit = 3_000 if quick else 6_000

    def build_scan_db() -> "IamDB":
        db = make_db("L", SSD_100G)
        load_rng = random.Random(123)
        order = list(range(s_records))
        load_rng.shuffle(order)
        for k in order:
            db.put(k, 100 + (k % 64))
        for _ in range(4 * s_records):
            k = load_rng.randrange(s_records)
            if load_rng.random() < 0.12:
                db.delete(k)
            else:
                db.put(k, 100)
        db.quiesce()
        return db

    db_ref = build_scan_db()
    db_opt = build_scan_db()
    # Start low enough that every scan runs its full limit; exhausted scans
    # measure fixed costs, not the per-record merge the kernel targets.
    starts = [rng.randrange(s_records // 3) for _ in range(n_scans)]
    v = reference_scan(db_ref, starts[0], None, limit=scan_limit)
    _verify(v == db_opt.scan(starts[0], None, limit=scan_limit),
            "batched scan diverged from the scalar reference")
    _verify(db_ref.runtime.clock.now == db_opt.runtime.clock.now,  # repro: noqa-REP004 (exact sim-clock equivalence gate)
            "batched scan moved the simulated clock differently than the reference")

    def drive_scans(fn: Callable[..., object]) -> None:
        for start in starts:
            fn(start, None, limit=scan_limit)

    scan_rows = n_scans * scan_limit
    out["read_scan_reference"] = _entry(
        scan_rows, _time(lambda: drive_scans(
            lambda lo, hi, limit: reference_scan(db_ref, lo, hi, limit=limit))))
    out["read_scan_batched"] = _entry(
        scan_rows, _time(lambda: drive_scans(
            lambda lo, hi, limit: db_opt.scan(lo, hi, limit=limit))))
    _verify(db_ref.runtime.clock.now == db_opt.runtime.clock.now,  # repro: noqa-REP004 (exact sim-clock equivalence gate)
            "timed scan runs ended at different simulated clocks")
    db_ref.close()
    db_opt.close()

    # ---- cluster fan-out: one scatter-gather RPC batch vs per-key routing
    from repro.cluster import ClusterDB, ClusterOptions

    c_records = 1_000 if quick else 2_000
    c_reads = 2_000 if quick else 4_000

    def build_cluster() -> "ClusterDB":
        cluster = ClusterDB(ClusterOptions(n_shards=4, n_replicas=2))
        hash_load(cluster, c_records, quiesce=False)
        cluster.quiesce()
        return cluster

    cl_ref = build_cluster()
    cl_opt = build_cluster()
    c_keys = [permute64(rng.randrange(c_records)) for _ in range(c_reads)]
    _verify(reference_cluster_read_loop(cl_ref, c_keys[:100])
            == cl_opt.multi_get(c_keys[:100]),
            "cluster multi_get diverged from the per-key routing reference")
    out["read_cluster_fanout_reference"] = _entry(
        c_reads, _time(lambda: reference_cluster_read_loop(cl_ref, c_keys),
                       repeat=2))
    out["read_cluster_fanout_batched"] = _entry(
        c_reads, _time(lambda: cl_opt.multi_get(c_keys), repeat=2))
    cl_ref.close()
    cl_opt.close()
    return out


# --------------------------------------------------------------- end to end
@effects("CLOCK_ADVANCE", "DISK_CHARGE", "HOST_TIME", "SPAN_BEGIN", "SPAN_END", "STATE_MUTATE")
def bench_end_to_end(quick: bool = False, *, config: str = "I-1t",
                     records: Optional[int] = None,
                     trace_path: Optional[str] = None) -> Dict[str, Dict[str, float]]:
    """Wall-clock of one scaled hash load (the exp_fig6-style inner loop).

    ``trace_path`` additionally runs the sim-time tracer on the load and
    writes a Chrome trace there -- tracing is observation-only, but note the
    wall-clock then includes the tracer's (small) bookkeeping overhead, so
    traced numbers are not comparable to the committed baseline.
    """
    from repro.bench.scale import SSD_100G, make_db
    from repro.workloads.dbbench import hash_load

    n = records if records is not None else SSD_100G.n_records
    if quick:
        n = max(1000, n // 4)
    db = make_db(config, SSD_100G)
    session = None
    if trace_path is not None:
        from repro.obs import attach_trace
        session = attach_trace(db)
    t0 = time.perf_counter()  # repro: noqa-REP001 (host benchmark timer)
    rep = hash_load(db, n, quiesce=False)
    seconds = time.perf_counter() - t0  # repro: noqa-REP001 (host benchmark timer)
    entry = _entry(n, seconds)
    entry.update({"config": config, "setup": "SSD-100G",
                  "write_amplification": round(rep.write_amplification, 6),
                  "sim_seconds": round(rep.sim_seconds, 6)})
    if session is not None and trace_path is not None:
        session.finish()
        session.write_chrome(trace_path)
        entry["traced"] = 1.0
    db.close()
    return {"end_to_end_hash_load": entry}


SUITES: Dict[str, Callable[[bool], Dict[str, Dict[str, float]]]] = {
    "memtable": bench_memtable,
    "merge": bench_merge,
    "pagecache": bench_pagecache,
    "workloads": bench_workloads,
    "reads": bench_reads,
    "end_to_end": bench_end_to_end,
}

#: (speedup name, numerator kernel, denominator kernel) pairs derived per run.
_SPEEDUP_PAIRS = (
    ("memtable_bulk_load", "memtable_bulk_load_add_many", "memtable_bulk_load_reference"),
    ("memtable_per_record_add", "memtable_bulk_load_add", "memtable_bulk_load_reference"),
    ("merge_2way", "merge_2way", "merge_2way_reference"),
    ("merge_5way", "merge_5way", "merge_5way_reference"),
    ("merge_2way_snapshots", "merge_2way_snapshots", "merge_2way_snapshots_reference"),
    ("pagecache_cold_admission", "pagecache_cold_admission", "pagecache_cold_admission_reference"),
    ("pagecache_touch", "pagecache_touch_range", "pagecache_touch_reference"),
    ("pagecache_insert_evicting", "pagecache_insert_evicting", "pagecache_insert_evicting_reference"),
    ("keygen_permute64", "keygen_permute64_many", "keygen_permute64_scalar"),
    ("keygen_zipfian", "keygen_zipfian_many", "keygen_zipfian_scalar"),
    ("keygen_scrambled", "keygen_scrambled_many", "keygen_scrambled_scalar"),
    ("read_multi_get", "read_multi_get_batched", "read_multi_get_reference"),
    ("read_scan", "read_scan_batched", "read_scan_reference"),
    ("read_cluster_fanout", "read_cluster_fanout_batched",
     "read_cluster_fanout_reference"),
)

#: Minimum speedup the batched read kernels must hold over their scalar
#: references whenever they appear in a --check'd report (the read-path
#: acceptance floor; wall-clock-independent, so checkable on any machine).
_READ_SPEEDUP_FLOOR = 3.0
_READ_SPEEDUP_KEYS = ("read_multi_get", "read_scan", "read_cluster_fanout")


def run_suite(which: Optional[Sequence[str]] = None, *,
              quick: bool = False,
              trace_path: Optional[str] = None) -> Dict[str, object]:
    """Run the selected suites; returns the full BENCH_perf report dict."""
    names = list(which) if which else list(SUITES)
    kernels: Dict[str, Dict[str, float]] = {}
    for name in names:
        if name == "end_to_end" and trace_path is not None:
            kernels.update(bench_end_to_end(quick, trace_path=trace_path))
        else:
            kernels.update(SUITES[name](quick))

    speedups: Dict[str, float] = {}
    for label, new, ref in _SPEEDUP_PAIRS:
        if new in kernels and ref in kernels and kernels[ref]["ops_per_s"]:
            speedups[label] = round(
                kernels[new]["ops_per_s"] / kernels[ref]["ops_per_s"], 2)
    e2e = kernels.get("end_to_end_hash_load")
    seed_e2e = SEED_BASELINE["end_to_end_hash_load"]
    if e2e and e2e["n_ops"] == seed_e2e["records"]:
        speedups["end_to_end_vs_seed"] = round(
            e2e["ops_per_s"] / seed_e2e["ops_per_s"], 2)
    return {
        "schema": 1,
        "generated_by": "python -m repro perf",
        "python": platform.python_version(),
        "quick": quick,
        "kernels": kernels,
        "speedups": speedups,
        "seed_baseline": SEED_BASELINE,
    }


def format_report(report: Dict[str, object]) -> str:
    from repro.bench.report import format_table

    rows: List[List[object]] = []
    for name, entry in sorted(report["kernels"].items()):  # type: ignore[union-attr]
        rows.append([name, entry["n_ops"], round(entry["seconds"], 4),
                     f"{entry['ops_per_s']:,.0f}"])
    text = format_table(["kernel", "ops", "seconds", "ops/s"], rows,
                        title="hot-path microbenchmarks"
                              + (" (quick)" if report.get("quick") else ""))
    speedups = report.get("speedups") or {}
    if speedups:
        lines = [f"  {k:>28}: {v:.2f}x" for k, v in sorted(speedups.items())]
        text += "\n\nspeedups (optimized vs reference, this machine):\n"
        text += "\n".join(lines)
    return text


def write_report(report: Dict[str, object], path: Path) -> None:
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")


def check_regression(report: Dict[str, object], baseline_path: Path, *,
                     max_regression: float = 0.30) -> List[str]:
    """Compare the fresh end-to-end run against the committed baseline.

    Returns a list of failure messages (empty = pass).  Only same-size runs
    are comparable; a size mismatch is reported as a failure so CI cannot
    silently skip the check.
    """
    if not baseline_path.exists():
        return [f"no baseline at {baseline_path}"]
    baseline = json.loads(baseline_path.read_text())
    base = (baseline.get("kernels") or {}).get("end_to_end_hash_load")
    cur = (report.get("kernels") or {}).get("end_to_end_hash_load")
    if base is None or cur is None:
        return ["baseline or current report lacks end_to_end_hash_load"]
    if base["n_ops"] != cur["n_ops"]:
        return [f"baseline ran {base['n_ops']} records, this run {cur['n_ops']}; "
                "regenerate the baseline with the same scale"]
    floor = base["ops_per_s"] * (1.0 - max_regression)
    failures = []
    if cur["ops_per_s"] < floor:
        failures.append(
            f"end_to_end_hash_load regressed: {cur['ops_per_s']:,.0f} ops/s "
            f"< {floor:,.0f} (baseline {base['ops_per_s']:,.0f} "
            f"- {max_regression:.0%} tolerance)")
    wa_base = base.get("write_amplification")
    wa_cur = cur.get("write_amplification")
    if wa_base is not None and wa_cur is not None and wa_base != wa_cur:
        failures.append(
            f"end-to-end write amplification changed: {wa_cur} != {wa_base} "
            "(hot-path rewrites must preserve record-level semantics)")
    speedups = report.get("speedups") or {}
    for label in _READ_SPEEDUP_KEYS:
        got = speedups.get(label)
        if got is not None and got < _READ_SPEEDUP_FLOOR:
            failures.append(
                f"{label} speedup {got:.2f}x below the "
                f"{_READ_SPEEDUP_FLOOR:.1f}x read-path floor")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point shared by ``python -m repro perf`` and benchmarks/perf."""
    import argparse

    p = argparse.ArgumentParser(
        prog="repro perf", description="hot-path microbenchmark suite")
    p.add_argument("--suite", action="append", choices=list(SUITES),
                   help="run only this suite (repeatable; default: all)")
    p.add_argument("--quick", action="store_true",
                   help="smaller problem sizes (not comparable to baselines)")
    p.add_argument("--update", action="store_true",
                   help=f"write {BENCH_PERF_FILENAME}")
    p.add_argument("--check", action="store_true",
                   help="fail if end-to-end regressed vs the committed baseline")
    p.add_argument("--max-regression", type=float, default=0.30,
                   help="tolerated end-to-end throughput drop (default 0.30)")
    p.add_argument("--out", type=Path, default=None,
                   help=f"baseline path (default ./{BENCH_PERF_FILENAME})")
    p.add_argument("--profile", action="store_true",
                   help="cProfile the suite and print the top entries")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="trace the end-to-end load; write a Chrome trace "
                        "(adds tracer overhead -- don't combine with --update)")
    args = p.parse_args(argv)

    from repro.bench.harness import maybe_profile

    with maybe_profile(args.profile):
        report = run_suite(args.suite, quick=args.quick,
                           trace_path=args.trace)
    if args.trace:
        print(f"wrote Chrome trace of the end-to-end load to {args.trace}")
    print(format_report(report))
    path = args.out if args.out is not None else Path(BENCH_PERF_FILENAME)
    rc = 0
    if args.check:
        failures = check_regression(report, path,
                                    max_regression=args.max_regression)
        for msg in failures:
            print(f"PERF REGRESSION: {msg}", file=sys.stderr)
        if failures:
            rc = 1
        else:
            print(f"\nperf check ok (within {args.max_regression:.0%} of "
                  f"{path})")
    if args.update:
        if args.quick:
            print("refusing to --update from a --quick run", file=sys.stderr)
            rc = rc or 2
        else:
            write_report(report, path)
            print(f"\nwrote {path}")
    return rc
