"""Frozen reference implementations of the optimized hot-path kernels.

These are verbatim copies of the pre-optimization (seed) memtable, merge and
page-cache code.  They exist for two reasons:

* **Equivalence oracles** -- ``tests/test_memtable_equivalence.py`` and
  ``tests/test_merge_equivalence.py`` assert that the optimized kernels in
  :mod:`repro.memtable`, :mod:`repro.table.merge` and
  :mod:`repro.storage.pagecache` produce record-identical / state-identical
  results on randomized MVCC workloads.
* **Perf baselines** -- ``benchmarks/perf/`` times each reference against its
  optimized counterpart, so every ``BENCH_perf.json`` carries live
  before/after numbers on the machine that produced it.

Do not "fix" or optimize this module: its value is that it never changes.
"""

from __future__ import annotations

import bisect
import heapq
from collections import OrderedDict
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence as PySequence,
    Tuple,
)

from repro.common.errors import ConfigError, InvariantViolation
from repro.common.records import (
    DELETE,
    KEY,
    KIND,
    PUT,
    RecordTuple,
    SEQ,
    VALUE,
    encoded_size,
    sort_key,
)

Version = Tuple[int, int, int]


class ReferenceMemtable:
    """The seed memtable: ``bisect.insort`` per insert (O(n) shifts)."""

    def __init__(self, key_size: int) -> None:
        self.key_size = key_size
        self._keys: List = []
        self._versions: Dict[object, List[Version]] = {}
        self.nbytes = 0
        self.n_records = 0
        self.min_seq: Optional[int] = None
        self.max_seq: Optional[int] = None

    def __len__(self) -> int:
        return self.n_records

    @property
    def n_keys(self) -> int:
        return len(self._keys)

    def add(self, rec: RecordTuple) -> None:
        key, seq, kind, vsize = rec
        versions = self._versions.get(key)
        if versions is None:
            bisect.insort(self._keys, key)
            self._versions[key] = [(seq, kind, vsize)]
        else:
            if versions[-1][0] >= seq:
                raise InvariantViolation(
                    f"memtable sequence numbers must increase per key (key={key!r})"
                )
            versions.append((seq, kind, vsize))
        self.nbytes += encoded_size(rec, self.key_size)
        self.n_records += 1
        if self.min_seq is None or seq < self.min_seq:
            self.min_seq = seq
        if self.max_seq is None or seq > self.max_seq:
            self.max_seq = seq

    def get(self, key: Any,
            snapshot: Optional[int] = None) -> Optional[RecordTuple]:
        versions = self._versions.get(key)
        if versions is None:
            return None
        if snapshot is None:
            seq, kind, vsize = versions[-1]
            return (key, seq, kind, vsize)
        for seq, kind, vsize in reversed(versions):
            if seq <= snapshot:
                return (key, seq, kind, vsize)
        return None

    def iter_range(self, lo: Any = None, hi: Any = None,
                   ) -> Iterator[RecordTuple]:
        keys = self._keys
        start = 0 if lo is None else bisect.bisect_left(keys, lo)
        stop = len(keys) if hi is None else bisect.bisect_left(keys, hi)
        for i in range(start, stop):
            key = keys[i]
            for seq, kind, vsize in reversed(self._versions[key]):
                yield (key, seq, kind, vsize)

    def sorted_records(self) -> List[RecordTuple]:
        return list(self.iter_range())

    def approximate_live_records(self) -> int:
        return sum(1 for v in self._versions.values() if v[-1][1] == PUT)


def reference_merge_runs(runs: PySequence[List[RecordTuple]], *,
                         drop_tombstones: bool = False,
                         snapshots: Optional[PySequence[int]] = None,
                         ) -> List[RecordTuple]:
    """The seed ``merge_runs``: ``heapq.merge(key=...)`` + ``pop(0)`` views."""
    if not runs:
        return []
    if len(runs) == 1:
        stream: Iterable[RecordTuple] = runs[0]
    else:
        stream = heapq.merge(*runs, key=sort_key)

    snap_desc: List[int] = sorted(set(snapshots), reverse=True) if snapshots else []

    out: List[RecordTuple] = []
    kept: List[RecordTuple] = []
    cur_key = object()
    views_left: List[int] = []
    served_latest = False

    def emit() -> None:
        if drop_tombstones:
            while kept and kept[-1][KIND] == DELETE:
                kept.pop()
        out.extend(kept)
        kept.clear()

    for rec in stream:
        key = rec[KEY]
        if key is not cur_key and key != cur_key:
            emit()
            cur_key = key
            views_left = list(snap_desc)
            served_latest = False
        seq = rec[SEQ]
        keep = False
        if not served_latest:
            served_latest = True
            keep = True
        while views_left and views_left[0] >= seq:
            views_left.pop(0)
            keep = True
        if keep:
            kept.append(rec)
    emit()
    return out


# ------------------------------------------------------------ read-path oracles
def reference_multi_get(db: Any, keys: Iterable[Any],
                        snapshot: Optional[int] = None,
                        ) -> List[Optional[object]]:
    """The frozen scalar batch read: one full walk per key, in order.

    This is the oracle :meth:`repro.db.iamdb.IamDB.multi_get` is proven
    against: per key, the seed read path (memtable, immutable memtable,
    then the engine's scalar ``get``) with the latency measured as the
    simulated-clock delta; one pump and one ``read`` latency sample per
    key after the batch, matching the batched path's bookkeeping.
    """
    runtime = db.runtime
    clock = runtime.clock
    snap = db._snap_seq(snapshot)
    values: List[Optional[object]] = []
    latencies: List[float] = []
    for key in keys:
        t0 = clock.now
        rec = db.memtable.get(key, snap)
        if rec is None and db.immutable is not None:
            rec = db.immutable.get(key, snap)
        if rec is None:
            rec, _ = db.engine.get(key, snap)
        latencies.append(clock.now - t0)
        values.append(None if rec is None or rec[KIND] == DELETE
                      else rec[VALUE])
    runtime.pump()
    for lat in latencies:
        db.metrics.record_latency("read", lat)
    return values


def _reference_merge_visible(streams: Iterable[Any], *,
                             snapshot: Optional[int] = None,
                             hi_key: Any = None,
                             limit: Optional[int] = None,
                             ) -> Iterator[Tuple[object, object]]:
    """Verbatim copy of the seed ``repro.db.iterator.merge_visible``."""
    live = [s for s in streams if s is not None]
    if not live:
        return
    merged = live[0] if len(live) == 1 else heapq.merge(*live, key=sort_key)
    served_key = _sentinel = object()
    count = 0
    for rec in merged:
        key = rec[KEY]
        if hi_key is not None and key >= hi_key:
            break
        if key is served_key or key == served_key:
            continue
        if snapshot is not None and rec[SEQ] > snapshot:
            continue
        served_key = key
        if rec[KIND] == DELETE:
            continue
        yield (key, rec[VALUE])
        count += 1
        if limit is not None and count >= limit:
            break


def reference_scan(db: Any, lo_key: Any = None, hi_key: Any = None, *,
                   limit: Optional[int] = None,
                   snapshot: Optional[int] = None,
                   ) -> List[Tuple[object, object]]:
    """The frozen scalar scan: seed ``IamDB.scan`` over the heap merge.

    Memtable/immutable snapshots plus one lazily-charging engine cursor per
    component, merged record by record through the generator pipeline --
    the oracle the batched :func:`repro.table.scan.merge_scan` assembler
    is proven charge-identical against.
    """
    runtime = db.runtime
    t0 = runtime.clock.now
    snap = db._snap_seq(snapshot)
    streams = [list(db.memtable.iter_range(lo_key, hi_key))]
    if db.immutable is not None:
        streams.append(list(db.immutable.iter_range(lo_key, hi_key)))
    streams.extend(db.engine.scan_cursors(lo_key, hi_key))
    out = list(_reference_merge_visible(streams, snapshot=snap,
                                        hi_key=hi_key, limit=limit))
    runtime.pump()
    db.metrics.record_latency("scan", runtime.clock.now - t0)
    return out


def reference_cluster_read_loop(cluster: Any, keys: Iterable[Any],
                                ) -> List[Optional[object]]:
    """The frozen scalar cluster read: one routed RPC per key, in order."""
    return [cluster.get(key) for key in keys]


BlockKey = Tuple[int, int]


class ReferencePageCache:
    """The seed page cache: per-block ``insert`` loops only."""

    def __init__(self, capacity_bytes: int, block_size: int) -> None:
        if capacity_bytes < 0:
            raise ConfigError("capacity_bytes must be >= 0")
        if block_size <= 0:
            raise ConfigError("block_size must be > 0")
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.max_blocks = capacity_bytes // block_size
        self._lru: "OrderedDict[BlockKey, None]" = OrderedDict()
        self._per_file: Dict[int, set] = {}
        self._pinned: set = set()
        self.insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._lru)

    def contains(self, file_id: int, block_no: int) -> bool:
        return (file_id, block_no) in self._lru

    def resident_blocks(self, file_id: int) -> int:
        blocks = self._per_file.get(file_id)
        return len(blocks) if blocks else 0

    def touch(self, file_id: int, block_no: int) -> bool:
        key = (file_id, block_no)
        if key in self._lru:
            self._lru.move_to_end(key)
            return True
        return False

    def insert(self, file_id: int, block_no: int) -> None:
        if self.max_blocks == 0:
            return
        key = (file_id, block_no)
        if key in self._lru:
            self._lru.move_to_end(key)
            return
        scanned = 0
        while len(self._lru) >= self.max_blocks and scanned < len(self._lru):
            old_key, _ = self._lru.popitem(last=False)
            if old_key in self._pinned:
                self._lru[old_key] = None
                scanned += 1
                continue
            self.evictions += 1
            self._dec(old_key)
        self._lru[key] = None
        blocks = self._per_file.get(file_id)
        if blocks is None:
            blocks = set()
            self._per_file[file_id] = blocks
        blocks.add(block_no)
        self.insertions += 1

    def insert_range(self, file_id: int, first_block: int, n_blocks: int) -> None:
        for b in range(first_block, first_block + n_blocks):
            self.insert(file_id, b)

    def pin_range(self, file_id: int, first_block: int, n_blocks: int) -> None:
        for b in range(first_block, first_block + n_blocks):
            self.insert(file_id, b)
            if self.contains(file_id, b):
                self._pinned.add((file_id, b))

    def _dec(self, key: BlockKey) -> None:
        blocks = self._per_file.get(key[0])
        if blocks is not None:
            blocks.discard(key[1])
            if not blocks:
                del self._per_file[key[0]]
