"""Experiment harness: one function per paper table/figure.

Each ``exp_*`` function runs the scaled workloads and returns structured
results; the ``benchmarks/`` suite wraps them with pytest-benchmark and
prints paper-style tables.  DB instances loaded for one experiment are cached
per (config, setup, dataset) within the process -- the paper itself loads the
1 TB database once and reuses it across runs (§6.1).
"""

from __future__ import annotations

import contextlib
import cProfile
import pstats
import sys
from typing import Any, Dict, Iterator, Optional, Sequence, TextIO, Tuple, cast

from repro.bench.scale import (
    HDD_100G,
    HDD_1T,
    SSD_100G,
    ScaledSetup,
    make_db,
)
from repro.db.iamdb import IamDB
from repro.workloads import (
    YCSB_WORKLOADS,
    fill_random,
    fill_seq,
    hash_load,
    overwrite,
    read_seq,
    run_ycsb,
)
from repro.workloads.runner import WorkloadReport

#: Default op count for a YCSB run phase (the paper runs each for an hour;
#: we bound by operations on the simulated clock).
DEFAULT_RUN_OPS = 4000

_loaded_cache: Dict[Tuple, IamDB] = {}


@contextlib.contextmanager
def maybe_profile(enabled: bool, *, sort: str = "cumulative",
                  limit: int = 30, stream: Optional[TextIO] = None,
                  ) -> Iterator[Optional[cProfile.Profile]]:
    """Optionally cProfile the enclosed block (``--profile`` CLI flag).

    When ``enabled`` is false this is a no-op context manager, so call sites
    can wrap unconditionally.  Stats go to ``stream`` (default stderr) so
    they never pollute result output on stdout.
    """
    if not enabled:
        yield None
        return
    prof = cProfile.Profile()
    prof.enable()
    try:
        yield prof
    finally:
        prof.disable()
        out = stream if stream is not None else sys.stderr
        pstats.Stats(prof, stream=out).sort_stats(sort).print_stats(limit)


def clear_cache() -> None:
    _loaded_cache.clear()


def loaded_db(config: str, setup: ScaledSetup, *, fresh: bool = False,
              quiesce: bool = False,
              **engine_kw: Any) -> Tuple[IamDB, WorkloadReport]:
    """A DB hash-loaded with the setup's dataset (cached unless ``fresh``)."""
    key = (config, setup.name, setup.n_records, quiesce,
           tuple(sorted(engine_kw.items())))
    if fresh or key not in _loaded_cache:
        db = make_db(config, setup, **engine_kw)
        report = hash_load(db, setup.n_records, quiesce=quiesce)
        db._load_report = report  # type: ignore[attr-defined] # stash for reuse
        if not fresh:
            _loaded_cache[key] = db
        return db, report
    db = _loaded_cache[key]
    return db, db._load_report  # type: ignore[attr-defined]


# ---------------------------------------------------------------- Table 3
def exp_table3(setup: ScaledSetup = HDD_100G, ks: Sequence[int] = (1, 2, 3),
               m: int = 3,
               ) -> Dict[int, Dict[int, float]]:
    """Per-level WA of IAM after a hash load, for fixed m and each k (§5.1.2)."""
    out: Dict[int, Dict[int, float]] = {}
    for k in ks:
        db = make_db("I-1t", setup, fixed_m=m, fixed_k=k)
        hash_load(db, setup.n_records, quiesce=False)
        out[k] = db.per_level_write_amplification()
        db.close()
    return out


# ---------------------------------------------------------------- Table 4
def exp_table4(setup: ScaledSetup = HDD_1T,
               configs: Sequence[str] = ("L", "R-1t", "R-4t", "A-1t",
                                         "A-4t", "I-1t", "I-4t"),
               ) -> Dict[str, Dict[int, float]]:
    """Per-level WA after hash-loading the 1 TB dataset for every config."""
    out: Dict[str, Dict[int, float]] = {}
    for config in configs:
        db = make_db(config, setup)
        hash_load(db, setup.n_records, quiesce=False)
        out[config] = db.per_level_write_amplification()
        db.close()
    return out


# ---------------------------------------------------------------- Figure 6
def exp_fig6(configs: Sequence[str] = ("L", "R-1t", "R-4t", "A-1t", "A-4t",
                                       "I-1t", "I-4t"),
             setups: Sequence[ScaledSetup] = (SSD_100G, HDD_100G, HDD_1T),
             ) -> Dict[str, Dict[str, WorkloadReport]]:
    """Hash-load throughput for each setup and config (normalized later)."""
    out: Dict[str, Dict[str, WorkloadReport]] = {}
    for setup in setups:
        rows: Dict[str, WorkloadReport] = {}
        for config in configs:
            db = make_db(config, setup)
            rows[config] = hash_load(db, setup.n_records, quiesce=False)
            db.close()
        out[setup.name] = rows
    return out


# ---------------------------------------------------------------- Figure 7
def exp_fig7(setup: ScaledSetup,
             workloads: Sequence[str] = ("A", "B", "C", "D", "E", "F", "G"),
             configs: Sequence[str] = ("L", "R-1t", "A-1t", "I-1t"),
             n_ops: int = DEFAULT_RUN_OPS,
             ) -> Dict[str, Dict[str, WorkloadReport]]:
    """YCSB A-G throughput on a loaded store (fresh load per config, §6.1)."""
    out: Dict[str, Dict[str, WorkloadReport]] = {w: {} for w in workloads}
    for config in configs:
        db, _ = loaded_db(config, setup)
        for w in workloads:
            ops = n_ops if YCSB_WORKLOADS[w].scan == 0 else max(200, n_ops // 10)
            if w == "G":
                ops = max(50, n_ops // 40)
            out[w][config] = run_ycsb(db, YCSB_WORKLOADS[w], ops, setup.n_records)
    return out


# ---------------------------------------------------------------- Figure 8
def _query_ops(workload: str, n_ops: int) -> int:
    """Op budget per query workload: scans are ~10x the work of reads."""
    if workload == "G":
        return max(50, n_ops // 40)
    if YCSB_WORKLOADS[workload].scan > 0:
        return max(200, n_ops // 10)
    return n_ops


def exp_fig8(setup: ScaledSetup = SSD_100G,
             workloads: Sequence[str] = ("B", "C", "D", "E", "G"),
             configs: Sequence[str] = ("L", "R-1t", "A-1t", "I-1t"),
             n_ops: int = DEFAULT_RUN_OPS,
             ) -> Dict[str, Dict[str, WorkloadReport]]:
    """Stable throughputs: run after the tuning phase completes (§6.4)."""
    out: Dict[str, Dict[str, WorkloadReport]] = {w: {} for w in workloads}
    for config in configs:
        db, _ = loaded_db(config, setup, quiesce=True)
        db.quiesce()  # no pending compaction debt: the stable state
        for w in workloads:
            out[w][config] = run_ycsb(db, YCSB_WORKLOADS[w],
                                      _query_ops(w, n_ops), setup.n_records)
    return out


def exp_fig8_stability(setup: ScaledSetup = SSD_100G,
                       workloads: Sequence[str] = ("B", "C", "D", "E", "G"),
                       configs: Sequence[str] = ("L", "R-1t", "A-1t", "I-1t"),
                       n_ops: int = DEFAULT_RUN_OPS,
                       ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 8 on the stability primitives: windowed throughput per phase.

    Same runs as :func:`exp_fig8`, but each (workload, config) cell is a
    windowed digest from a :class:`~repro.obs.stability.StabilityProbe`
    instead of one scalar: the duration-weighted ``mean_ops_s`` (equal to
    the old ``WorkloadReport.throughput`` by construction -- the benchmark
    asserts it), plus ``cv`` / ``min_window_ops_s`` / ``stall_fraction``,
    which quantify the *stability* the figure's caption talks about.
    """
    from repro.obs.stability import StabilityProbe

    out: Dict[str, Dict[str, Dict[str, float]]] = {w: {} for w in workloads}
    for config in configs:
        db, _ = loaded_db(config, setup, quiesce=True)
        db.quiesce()  # no pending compaction debt: the stable state
        probe = StabilityProbe(db)
        for w in workloads:
            mark = probe.mark()
            rep = run_ycsb(db, YCSB_WORKLOADS[w], _query_ops(w, n_ops),
                           setup.n_records)
            digest = probe.window_report(mark)
            tp = cast(Dict[str, float], digest["throughput"])
            stalls = cast(Dict[str, float], digest["stalls"])
            out[w][config] = {
                "ops_per_s": rep.throughput,
                "mean_ops_s": float(tp["mean_ops_s"]),
                "cv": float(tp["cv"]),
                "min_window_ops_s": float(tp["min_window_ops_s"]),
                "stall_fraction": float(stalls["stall_fraction"]),
            }
    return out


# ---------------------------------------------------------------- Table 5
def exp_table5(setups: Sequence[ScaledSetup] = (SSD_100G, HDD_100G, HDD_1T),
               workloads: Sequence[str] = ("B", "C", "D", "E", "G"),
               configs: Sequence[str] = ("L", "R-1t", "A-1t", "I-1t"),
               n_ops: int = DEFAULT_RUN_OPS,
               ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """99th-percentile latencies for the query-intensive workloads.

    Returns {workload: {config: {setup_name: p99_seconds}}}.
    """
    out: Dict[str, Dict[str, Dict[str, float]]] = {
        w: {c: {} for c in configs} for w in workloads}
    for setup in setups:
        for config in configs:
            db, _ = loaded_db(config, setup)
            for w in workloads:
                spec = YCSB_WORKLOADS[w]
                rep = run_ycsb(db, spec, _query_ops(w, n_ops), setup.n_records)
                op_type = "scan" if spec.scan > 0 else "read"
                out[w][config][setup.name] = rep.latency.get(op_type, {}).get("p99", 0.0)
    return out


def exp_table5_hist(setups: Sequence[ScaledSetup] = (SSD_100G, HDD_100G,
                                                     HDD_1T),
                    workloads: Sequence[str] = ("B", "C", "D", "E", "G"),
                    configs: Sequence[str] = ("L", "R-1t", "A-1t", "I-1t"),
                    n_ops: int = DEFAULT_RUN_OPS,
                    ) -> Dict[str, Dict[str, Dict[str, Dict[str, float]]]]:
    """Table 5 on the histogram primitives: tail latencies per phase.

    Same runs as :func:`exp_table5`, but the tails come from the per-op-
    class log-linear histograms (windowed per workload with
    :meth:`~repro.obs.stability.StabilityProbe.latency_since`) rather than
    the per-op sample recorder.  Each cell is the full digest
    ``{"p50", "p99", "p999", "max", ...}`` plus ``p99_recorder``, the old
    sample-interpolated p99, so the benchmark can assert the two
    conventions agree to within the histogram's bucket resolution.
    """
    from repro.obs.stability import StabilityProbe

    out: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {
        w: {c: {} for c in configs} for w in workloads}
    for setup in setups:
        for config in configs:
            db, _ = loaded_db(config, setup)
            probe = StabilityProbe(db)
            for w in workloads:
                spec = YCSB_WORKLOADS[w]
                mark = probe.mark()
                rep = run_ycsb(db, spec, _query_ops(w, n_ops), setup.n_records)
                op_class = "scan" if spec.scan > 0 else "get"
                op_type = "scan" if spec.scan > 0 else "read"
                digest = dict(probe.latency_since(mark).get(op_class, {}))
                digest["p99_recorder"] = (
                    rep.latency.get(op_type, {}).get("p99", 0.0))
                out[w][config][setup.name] = digest
    return out


# ---------------------------------------------------------------- Figure 9
def exp_fig9(setups: Sequence[ScaledSetup] = (SSD_100G, HDD_100G),
             configs: Sequence[str] = ("L", "R-1t", "A-1t", "I-1t"),
             ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """db_bench fillseq + readseq throughputs (§6.6)."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {"fillseq": {}, "readseq": {}}
    for setup in setups:
        fs: Dict[str, float] = {}
        rs: Dict[str, float] = {}
        for config in configs:
            db = make_db(config, setup)
            rep = fill_seq(db, setup.n_records, quiesce=False)
            fs[config] = rep.throughput
            scan_rep = read_seq(db)
            rs[config] = (scan_rep.ops / scan_rep.sim_seconds
                          if scan_rep.sim_seconds > 0 else 0.0)
            db.close()
        out["fillseq"][setup.name] = fs
        out["readseq"][setup.name] = rs
    return out


# ---------------------------------------------------------------- Figure 10
def exp_fig10(setup: ScaledSetup = SSD_100G,
              configs: Sequence[str] = ("L", "R-1t", "A-1t", "I-1t"),
              ) -> Dict[str, Dict[str, int]]:
    """Space usage after fillseq / hash-load / fillrandom / overwrite (§6.7)."""
    out: Dict[str, Dict[str, int]] = {}
    n = setup.n_records
    for test in ("fillseq", "hash-load", "fillrandom", "overwrite"):
        row: Dict[str, int] = {}
        for config in configs:
            db = make_db(config, setup)
            if test == "fillseq":
                fill_seq(db, n, quiesce=False)
            elif test == "hash-load":
                hash_load(db, n, quiesce=False)
            elif test == "fillrandom":
                fill_random(db, n, quiesce=False)
            else:
                # The paper overwrites for an hour; two full passes give the
                # outdated-record accumulation the same chance to show.
                hash_load(db, n, quiesce=False)
                overwrite(db, 2 * n, n, quiesce=False)
            row[config] = db.space_used_bytes()
            db.close()
        out[test] = row
    return out


# -------------------------------------------------------- §6.2 tail latency
def exp_load_latency(setup: ScaledSetup = SSD_100G,
                     configs: Sequence[str] = ("L", "R-1t", "A-1t", "I-1t"),
                     ) -> Dict[str, Dict[str, float]]:
    """Insert-latency tail during a hash load: p99 and max per config."""
    out: Dict[str, Dict[str, float]] = {}
    for config in configs:
        db = make_db(config, setup)
        hash_load(db, setup.n_records, quiesce=False)
        rec = db.metrics.latency["insert"]
        out[config] = {"p99": rec.p99(), "max": rec.max, "mean": rec.mean}
        db.close()
    return out


# ------------------------------------------------------------- §6.8 (FLSM)
def exp_flsm_seqwrite(setup: ScaledSetup = SSD_100G,
                      ) -> Dict[str, WorkloadReport]:
    """Sequential-load behaviour: FLSM rewrites, LSA/IAM/LSM move (§6.8)."""
    out: Dict[str, WorkloadReport] = {}
    for engine in ("flsm", "leveldb", "lsa", "iam"):
        db = IamDB(engine, storage_options=setup.storage_options())
        out[engine] = fill_seq(db, setup.n_records, quiesce=False)
        db.close()
    return out
