"""Scaled experiment setups (§6.1 testbed -> simulation scale).

The paper's configurations map 1 paper-GB -> 0.25 sim-MB (see
``repro.common.options.SCALE_BYTES``), preserving the ratios that determine
tree depth and the mixed-level index.  ``REPRO_SCALE`` (a float environment
variable, default 1.0) further multiplies dataset sizes for quick runs, e.g.
``REPRO_SCALE=0.25 pytest benchmarks/`` for a 4x-smaller sweep -- memory
scales along with data so cache ratios stay fixed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from repro.common.options import (
    GIB,
    DeviceProfile,
    HDD,
    IamOptions,
    LsmOptions,
    SSD,
    StorageOptions,
    TreeOptions,
    paper_bytes,
)
from repro.common.records import RECORD_OVERHEAD
from repro.db.iamdb import IamDB

#: Paper value size is 1024 B; scaled to keep ~4 records per cache block.
VALUE_SIZE = 256
KEY_SIZE = 16
RECORD_BYTES = VALUE_SIZE + KEY_SIZE + RECORD_OVERHEAD


def scale_factor() -> float:
    """The REPRO_SCALE multiplier (default 1.0)."""
    try:
        return max(1e-3, float(os.environ.get("REPRO_SCALE", "1.0")))
    except ValueError:
        return 1.0


@dataclass(frozen=True)
class ScaledSetup:
    """One testbed configuration of §6.1."""

    name: str
    device: DeviceProfile
    data_bytes_unscaled: int  # already paper->sim scaled, before REPRO_SCALE
    memory_bytes_unscaled: int

    @property
    def data_bytes(self) -> int:
        return int(self.data_bytes_unscaled * scale_factor())

    @property
    def memory_bytes(self) -> int:
        return int(self.memory_bytes_unscaled * scale_factor())

    @property
    def n_records(self) -> int:
        return max(1, self.data_bytes // RECORD_BYTES)

    def storage_options(self) -> StorageOptions:
        return StorageOptions(device=self.device,
                              page_cache_bytes=self.memory_bytes)


#: 100 GB data / 16 GB RAM on SSD (§6.1: "only 16GB memory available").
SSD_100G = ScaledSetup("SSD-100G", SSD, paper_bytes(100 * GIB), paper_bytes(16 * GIB))
#: 100 GB data / 16 GB RAM on HDD.
HDD_100G = ScaledSetup("HDD-100G", HDD, paper_bytes(100 * GIB), paper_bytes(16 * GIB))
#: 1 TB data / 64 GB RAM on HDD.
HDD_1T = ScaledSetup("HDD-1T", HDD, paper_bytes(1024 * GIB), paper_bytes(64 * GIB))

SETUPS = {s.name: s for s in (SSD_100G, HDD_100G, HDD_1T)}

#: The engine configurations of §6.2's legend.
ENGINE_CONFIGS = {
    "L": ("leveldb", 1),
    "R-1t": ("rocksdb", 1),
    "R-4t": ("rocksdb", 4),
    "A-1t": ("lsa", 1),
    "A-4t": ("lsa", 4),
    "I-1t": ("iam", 1),
    "I-4t": ("iam", 4),
}


def make_db(config: str, setup: ScaledSetup, **engine_kw: Any) -> IamDB:
    """Build a DB for one legend config ("L", "R-1t", "I-4t", ...)."""
    engine, threads = ENGINE_CONFIGS[config]
    opts: TreeOptions
    if engine in ("iam", "lsa"):
        opts = IamOptions(key_size=KEY_SIZE, background_threads=threads, **engine_kw)
    elif engine == "rocksdb":
        opts = LsmOptions.rocksdb(key_size=KEY_SIZE, background_threads=threads,
                                  **engine_kw)
    else:
        opts = LsmOptions.leveldb(key_size=KEY_SIZE, background_threads=threads,
                                  **engine_kw)
    return IamDB(engine, engine_options=opts,
                 storage_options=setup.storage_options())
