"""Experiment harness regenerating the paper's tables and figures."""

from repro.bench.scale import (
    HDD_100G,
    HDD_1T,
    SSD_100G,
    ScaledSetup,
    make_db,
    scale_factor,
)
from repro.bench.report import format_table

__all__ = [
    "HDD_100G",
    "HDD_1T",
    "SSD_100G",
    "ScaledSetup",
    "format_table",
    "make_db",
    "scale_factor",
]
