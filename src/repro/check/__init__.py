"""Correctness tooling for the LSA/IAM engine (``python -m repro check``).

Three independent gates share this package (see DESIGN.md, "Correctness
tooling"):

* :mod:`repro.check.lint` -- an AST-based determinism lint with repo-specific
  rules (REP001...); the simulated clock must be the only time source, RNGs
  must be seeded, structural checks must raise :class:`InvariantViolation`.
* :mod:`repro.check.typing_gate` -- the mypy strict-ish gate configured in
  ``pyproject.toml`` (skipped gracefully when mypy is not installed).
* :mod:`repro.check.sanitizer` -- an opt-in runtime sanitizer that walks the
  live tree after every structural operation and verifies the paper's
  invariants (range disjointness, sortedness, the mixed-level ``k`` bound,
  WAL/memtable agreement, cache pin balance, clock monotonicity).

Only :mod:`repro.check.diagnostics` is imported eagerly: engine modules import
it for the shared violation-message code path, so this ``__init__`` must stay
import-light to avoid cycles.
"""

from __future__ import annotations

from repro.check.diagnostics import Diagnostic, invariant_error

__all__ = ["Diagnostic", "invariant_error"]
