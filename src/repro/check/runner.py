"""The ``python -m repro check`` driver.

Runs the three correctness gates in order and reports one status line each:

1. **lint** -- the AST determinism lint (:mod:`repro.check.lint`) over
   ``src/repro`` (or explicit paths).
2. **types** -- the mypy strict-ish gate (:mod:`repro.check.typing_gate`);
   SKIPs with a notice when mypy is not installed.
3. **sanitizer** -- a smoke workload (mixed puts/deletes/reads/scans, an
   explicit flush and a crash/recovery cycle) on the IAM and LSA engines with
   the runtime sanitizer collecting violations.
4. **cluster** -- a tiny sharded/replicated cluster run (mixed ops, a forced
   leader failover, a forced shard split) with the cluster invariant catalog
   (:mod:`repro.cluster.invariants`) checked throughout: shard ranges tile
   the key space exactly, acked writes sit on a quorum, and no file is owned
   by two live replicas after a rebalance.

Exit status is 0 only when no gate FAILs (SKIP does not fail the run).
"""

from __future__ import annotations

import argparse
import random
from typing import List, Optional

from repro.check.lint import RULES, lint_paths, lint_repo
from repro.check.typing_gate import run_typing_gate


def _run_lint(args: argparse.Namespace) -> "tuple[bool, str]":
    rules = set(args.rule) if args.rule else None
    if args.paths:
        findings = lint_paths(args.paths, rules=rules)
    else:
        findings = lint_repo(rules=rules)
    if findings:
        lines = [f.format() for f in findings]
        lines.append(f"{len(findings)} finding(s)")
        return False, "\n".join(lines)
    return True, "0 findings"


def _smoke_workload(engine: str, seed: int) -> "tuple[int, int, List[str]]":
    """Run a small mixed workload with the sanitizer collecting violations.

    Returns (events_seen, checks_run, violation messages).
    """
    from repro.check.sanitizer import Sanitizer, SanitizerOptions
    from repro.common.options import IamOptions, SSD, StorageOptions
    from repro.db.iamdb import IamDB

    opts = IamOptions(node_capacity=2048, fanout=3, key_size=8,
                      bloom_bits_per_key=14, retune_interval=2)
    storage = StorageOptions(device=SSD, page_cache_bytes=16 * 1024,
                             block_size=256)
    db = IamDB(engine, engine_options=opts, storage_options=storage,
               sanitizer_options=SanitizerOptions(halt_on_violation=False))
    rng = random.Random(seed)
    keyspace = 512
    for i in range(900):
        roll = rng.random()
        key = rng.randrange(keyspace)
        if roll < 0.55:
            db.put(key, 64)
        elif roll < 0.65:
            db.delete(key)
        elif roll < 0.85:
            db.get(key)
        else:
            lo = rng.randrange(keyspace)
            db.scan(lo, lo + 16, limit=8)
        if i == 450:
            db.flush()
            db.crash_and_recover()
    db.flush()
    db.quiesce()
    db.engine.check_invariants()
    sanitizer = db.sanitizer
    assert sanitizer is not None  # repro: noqa-REP008 (driver-internal)
    messages = [d.format() for d in sanitizer.violations]
    summary = sanitizer.summary()
    db.close()
    return summary["events_seen"], summary["checks_run"], messages


def _run_sanitizer_smoke(args: argparse.Namespace) -> "tuple[bool, str]":
    total_events = 0
    total_checks = 0
    failures: List[str] = []
    for engine in ("iam", "lsa"):
        events, checks, messages = _smoke_workload(engine, seed=args.seed)
        total_events += events
        total_checks += checks
        failures.extend(f"[{engine}] {m}" for m in messages)
    detail = f"{total_events} events, {total_checks} checks"
    if failures:
        return False, "\n".join(failures + [detail])
    return True, detail


def _run_cluster_smoke(args: argparse.Namespace) -> "tuple[bool, str]":
    """Tiny sharded run exercising the cluster invariant catalog.

    Mixed ops against a 3-shard/2-replica cluster checked against a model
    dict, with one forced leader failover and one forced shard split; the
    invariant catalog runs every 100 ops and after each structural event.
    """
    from repro.cluster import ClusterDB, ClusterOptions
    from repro.cluster.invariants import check_cluster_invariants
    from repro.common.errors import InvariantViolation
    from repro.common.options import IamOptions, SSD, StorageOptions

    opts = IamOptions(node_capacity=2048, fanout=3, key_size=8,
                      bloom_bits_per_key=14, retune_interval=2)
    storage = StorageOptions(device=SSD, page_cache_bytes=16 * 1024,
                             block_size=256)
    cluster = ClusterDB(ClusterOptions(
        n_shards=3, n_replicas=2, engine_options=opts,
        storage_options=storage))
    rng = random.Random(args.seed)
    keys = [rng.randrange(2 ** 64) for _ in range(256)]
    model: "dict[int, int]" = {}
    checks = 0
    failures: List[str] = []
    try:
        for i in range(700):
            key = keys[rng.randrange(len(keys))]
            roll = rng.random()
            if roll < 0.6:
                value = 32 + (i % 64)
                cluster.put(key, value)
                model[key] = value
            elif roll < 0.7:
                cluster.delete(key)
                model.pop(key, None)
            else:
                got = cluster.get(key)
                want = model.get(key)
                if got != want:
                    raise InvariantViolation(
                        f"cluster read {key:#x}: got {got}, want {want}")
            if i == 350:
                cluster.crash_leader(1)
                check_cluster_invariants(cluster)
                checks += 1
            if i % 100 == 99:
                check_cluster_invariants(cluster)
                checks += 1
        fattest = max(cluster.router.shards, key=lambda s: s.data_bytes())
        cluster.rebalancer.split(fattest)
        check_cluster_invariants(cluster)
        checks += 1
        for key, want in sorted(model.items()):
            if cluster.get(key) != want:
                raise InvariantViolation(
                    f"post-split read {key:#x} diverged from model")
        cluster.quiesce()
        cluster.check_invariants()
        checks += 1
    except InvariantViolation as exc:
        failures.append(str(exc))
    n_shards = len(cluster.router.shards)
    n_failovers = len(cluster.failover_reports)
    cluster.close()
    detail = (f"{checks} invariant sweeps, {n_shards} shards, "
              f"{n_failovers} failover(s), {len(model)} live keys")
    if failures:
        return False, "\n".join(failures + [detail])
    return True, detail


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro check",
        description="determinism lint + typing gate + sanitizer smoke run")
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: src/repro)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the lint rule catalog and exit")
    p.add_argument("--rule", action="append", metavar="REPxxx",
                   help="restrict the lint to the given rule(s)")
    p.add_argument("--skip-lint", action="store_true")
    p.add_argument("--skip-types", action="store_true")
    p.add_argument("--skip-sanitizer", action="store_true")
    p.add_argument("--skip-cluster", action="store_true")
    p.add_argument("--seed", type=int, default=0xC0FFEE,
                   help="seed of the sanitizer and cluster smoke workloads")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, description in sorted(RULES.items()):
            print(f"{rule_id}  {description}")
        return 0
    if args.rule:
        unknown = [r for r in args.rule if r not in RULES]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}")
            return 2

    failed = False

    if args.skip_lint:
        print("lint       SKIP (--skip-lint)")
    else:
        ok, detail = _run_lint(args)
        if ok:
            print(f"lint       PASS ({detail})")
        else:
            failed = True
            print(detail)
            print("lint       FAIL")

    if args.skip_types:
        print("types      SKIP (--skip-types)")
    else:
        gate = run_typing_gate()
        if gate.status == "FAIL":
            failed = True
            print(gate.output)
        detail = gate.output.splitlines()[0] if gate.skipped and gate.output else ""
        print(f"types      {gate.status}" + (f" ({detail})" if detail else ""))

    if args.skip_sanitizer:
        print("sanitizer  SKIP (--skip-sanitizer)")
    else:
        ok, detail = _run_sanitizer_smoke(args)
        if ok:
            print(f"sanitizer  PASS ({detail}, 0 violations)")
        else:
            failed = True
            print(detail)
            print("sanitizer  FAIL")

    if args.skip_cluster:
        print("cluster    SKIP (--skip-cluster)")
    else:
        ok, detail = _run_cluster_smoke(args)
        if ok:
            print(f"cluster    PASS ({detail})")
        else:
            failed = True
            print(detail)
            print("cluster    FAIL")

    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(main())
