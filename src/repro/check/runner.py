"""The ``python -m repro check`` driver.

Runs the six correctness gates in order and reports one status line each:

1. **lint** -- the AST determinism lint (:mod:`repro.check.lint`) over
   ``src/repro`` (or explicit paths).
2. **types** -- the mypy strict-ish gate (:mod:`repro.check.typing_gate`);
   SKIPs with a notice when mypy is not installed.
3. **sanitizer** -- a smoke workload (mixed puts/deletes/reads/scans, an
   explicit flush and a crash/recovery cycle) on the IAM and LSA engines with
   the runtime sanitizer collecting violations.
4. **cluster** -- a tiny sharded/replicated cluster run (mixed ops, a forced
   leader failover, a forced shard split) with the cluster invariant catalog
   (:mod:`repro.cluster.invariants`) checked throughout: shard ranges tile
   the key space exactly, acked writes sit on a quorum, and no file is owned
   by two live replicas after a rebalance.
5. **objstore** -- a tiny shared-storage cluster run: follower bootstrap
   from the shared manifest log (zero leader WAL bytes for the flushed
   prefix), a leader kill recovered off shared storage, and a time-travel
   read (``as_of_cut``) checked against a model recorded at that cut.
6. **effects** -- the whole-program effect-inference pass
   (:mod:`repro.check.effects`): clock purity of observation paths, charged
   I/O, seeded RNG, span balance, declared host-time (REP100...REP105).

Every gate runs even when an earlier one fails or raises: a gate that
escapes with an exception is reported ERROR (with the exception inline) and
the remaining gates still execute, so one broken invariant cannot mask
another.  A summary line closes the run.  Exit status is 0 only when no
gate FAILs or ERRORs (SKIP does not fail the run); 2 signals a usage error
(unknown rule or gate name).
"""

from __future__ import annotations

import argparse
import random
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.check.lint import RULES, lint_paths, lint_repo
from repro.check.typing_gate import run_typing_gate

#: Gate names in execution order (also the --gate vocabulary).
GATE_NAMES: Tuple[str, ...] = (
    "lint", "types", "sanitizer", "cluster", "objstore", "effects")


@dataclass
class GateOutcome:
    """One gate's result: status is PASS, FAIL, SKIP or ERROR."""

    name: str
    status: str
    #: Extra output printed *before* the status line (findings, tracebacks).
    body: str = ""
    #: Short parenthesized annotation on the status line.
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("FAIL", "ERROR")


def _run_lint(args: argparse.Namespace) -> GateOutcome:
    rules = set(args.rule) if args.rule else None
    if args.paths:
        findings = lint_paths(args.paths, rules=rules)
    else:
        findings = lint_repo(rules=rules)
    if findings:
        lines = [f.format() for f in findings]
        lines.append(f"{len(findings)} finding(s)")
        return GateOutcome("lint", "FAIL", body="\n".join(lines))
    return GateOutcome("lint", "PASS", detail="0 findings")


def _run_types(args: argparse.Namespace) -> GateOutcome:
    gate = run_typing_gate()
    if gate.status == "FAIL":
        return GateOutcome("types", "FAIL", body=gate.output)
    detail = gate.output.splitlines()[0] if gate.skipped and gate.output else ""
    return GateOutcome("types", gate.status, detail=detail)


def _smoke_workload(engine: str, seed: int) -> "tuple[int, int, List[str]]":
    """Run a small mixed workload with the sanitizer collecting violations.

    Returns (events_seen, checks_run, violation messages).
    """
    from repro.check.sanitizer import Sanitizer, SanitizerOptions
    from repro.common.options import IamOptions, SSD, StorageOptions
    from repro.db.iamdb import IamDB

    opts = IamOptions(node_capacity=2048, fanout=3, key_size=8,
                      bloom_bits_per_key=14, retune_interval=2)
    storage = StorageOptions(device=SSD, page_cache_bytes=16 * 1024,
                             block_size=256)
    db = IamDB(engine, engine_options=opts, storage_options=storage,
               sanitizer_options=SanitizerOptions(halt_on_violation=False))
    rng = random.Random(seed)
    keyspace = 512
    for i in range(900):
        roll = rng.random()
        key = rng.randrange(keyspace)
        if roll < 0.55:
            db.put(key, 64)
        elif roll < 0.65:
            db.delete(key)
        elif roll < 0.85:
            db.get(key)
        else:
            lo = rng.randrange(keyspace)
            db.scan(lo, lo + 16, limit=8)
        if i == 450:
            db.flush()
            db.crash_and_recover()
    db.flush()
    db.quiesce()
    db.engine.check_invariants()
    sanitizer = db.sanitizer
    assert sanitizer is not None  # repro: noqa-REP008 (driver-internal)
    messages = [d.format() for d in sanitizer.violations]
    summary = sanitizer.summary()
    db.close()
    return summary["events_seen"], summary["checks_run"], messages


def _run_sanitizer_smoke(args: argparse.Namespace) -> GateOutcome:
    total_events = 0
    total_checks = 0
    failures: List[str] = []
    for engine in ("iam", "lsa"):
        events, checks, messages = _smoke_workload(engine, seed=args.seed)
        total_events += events
        total_checks += checks
        failures.extend(f"[{engine}] {m}" for m in messages)
    detail = f"{total_events} events, {total_checks} checks"
    if failures:
        return GateOutcome("sanitizer", "FAIL",
                           body="\n".join(failures + [detail]))
    return GateOutcome("sanitizer", "PASS", detail=f"{detail}, 0 violations")


def _run_cluster_smoke(args: argparse.Namespace) -> GateOutcome:
    """Tiny sharded run exercising the cluster invariant catalog.

    Mixed ops against a 3-shard/2-replica cluster checked against a model
    dict, with one forced leader failover and one forced shard split; the
    invariant catalog runs every 100 ops and after each structural event.
    """
    from repro.cluster import ClusterDB, ClusterOptions
    from repro.cluster.invariants import check_cluster_invariants
    from repro.common.errors import InvariantViolation
    from repro.common.options import IamOptions, SSD, StorageOptions

    opts = IamOptions(node_capacity=2048, fanout=3, key_size=8,
                      bloom_bits_per_key=14, retune_interval=2)
    storage = StorageOptions(device=SSD, page_cache_bytes=16 * 1024,
                             block_size=256)
    cluster = ClusterDB(ClusterOptions(
        n_shards=3, n_replicas=2, engine_options=opts,
        storage_options=storage))
    rng = random.Random(args.seed)
    keys = [rng.randrange(2 ** 64) for _ in range(256)]
    model: "dict[int, int]" = {}
    checks = 0
    failures: List[str] = []
    try:
        for i in range(700):
            key = keys[rng.randrange(len(keys))]
            roll = rng.random()
            if roll < 0.6:
                value = 32 + (i % 64)
                cluster.put(key, value)
                model[key] = value
            elif roll < 0.7:
                cluster.delete(key)
                model.pop(key, None)
            else:
                got = cluster.get(key)
                want = model.get(key)
                if got != want:
                    raise InvariantViolation(
                        f"cluster read {key:#x}: got {got}, want {want}")
            if i == 350:
                cluster.crash_leader(1)
                check_cluster_invariants(cluster)
                checks += 1
            if i % 100 == 99:
                check_cluster_invariants(cluster)
                checks += 1
        fattest = max(cluster.router.shards, key=lambda s: s.data_bytes())
        cluster.rebalancer.split(fattest)
        check_cluster_invariants(cluster)
        checks += 1
        for key, want in sorted(model.items()):
            if cluster.get(key) != want:
                raise InvariantViolation(
                    f"post-split read {key:#x} diverged from model")
        cluster.quiesce()
        cluster.check_invariants()
        checks += 1
    except InvariantViolation as exc:
        failures.append(str(exc))
    n_shards = len(cluster.router.shards)
    n_failovers = len(cluster.failover_reports)
    cluster.close()
    detail = (f"{checks} invariant sweeps, {n_shards} shards, "
              f"{n_failovers} failover(s), {len(model)} live keys")
    if failures:
        return GateOutcome("cluster", "FAIL",
                           body="\n".join(failures + [detail]))
    return GateOutcome("cluster", "PASS", detail=detail)


def _run_objstore_smoke(args: argparse.Namespace) -> GateOutcome:
    """Tiny shared-storage cluster run pinning the objstore contracts.

    A 1-shard/2-replica cluster with the simulated object store attached:
    phase-1 writes are flushed and the model is recorded at the latest
    manifest cut; a new follower then bootstraps *from shared storage*
    (asserted: zero bytes on the leader's links for the flushed prefix);
    phase-2 overwrites land, the leader is killed (recovery re-reads the
    shared log), and the promoted leader must serve both the live model
    and a time-travel read (``as_of_cut``) matching the recorded one.
    """
    from repro.cluster import ClusterDB, ClusterOptions
    from repro.cluster.invariants import check_cluster_invariants
    from repro.common.errors import InvariantViolation
    from repro.common.options import IamOptions, SSD, StorageOptions
    from repro.objstore import ObjStoreOptions

    opts = IamOptions(node_capacity=2048, fanout=3, key_size=8,
                      bloom_bits_per_key=14, retune_interval=2)
    storage = StorageOptions(device=SSD, page_cache_bytes=16 * 1024,
                             block_size=256)
    cluster = ClusterDB(ClusterOptions(
        n_shards=1, n_replicas=2, engine_options=opts,
        storage_options=storage, objstore=ObjStoreOptions(),
        objstore_retain_cuts=64))
    rng = random.Random(args.seed)
    keys = [rng.randrange(2 ** 64) for _ in range(160)]
    model: "dict[int, int]" = {}
    failures: List[str] = []
    tt_checks = 0
    cut_n = 0
    try:
        # Phase 1: mixed writes, flushed so the manifest cut covers them.
        for i in range(300):
            key = keys[rng.randrange(len(keys))]
            if rng.random() < 0.85:
                value = 32 + (i % 64)
                cluster.put(key, value)
                model[key] = value
            else:
                cluster.delete(key)
                model.pop(key, None)
        cluster.flush()
        cluster.quiesce()
        model1 = dict(model)
        log = cluster.manifest_logs[cluster.router.shards[0].shard_id]
        cut = log.latest_cut()
        if cut is None:
            raise InvariantViolation("no manifest cut after flush")
        cut_n = cut.cut_id
        # Follower bootstrap from shared storage: the flushed prefix must
        # cost the leader zero network bytes (objects come from the store).
        leader_node = cluster.router.shards[0].group.leader.node_id
        before = sum(v for (src, _dst), v
                     in cluster.network.link_bytes.items()
                     if src == leader_node)
        boot = cluster.spawn_follower(0, mode="objstore")
        after = sum(v for (src, _dst), v
                    in cluster.network.link_bytes.items()
                    if src == leader_node)
        if boot["wal_tail_records"] != 0 or after != before:
            raise InvariantViolation(
                f"objstore bootstrap shipped leader bytes: tail="
                f"{boot['wal_tail_records']}, link delta {after - before}")
        if int(boot["objects_fetched"]) <= 0:  # type: ignore[call-overload]
            raise InvariantViolation("bootstrap fetched no objects")
        # Phase 2: overwrites, then a leader kill; recovery re-reads the
        # shared log and the promoted leader serves the acked audit.
        for i in range(150):
            key = keys[rng.randrange(len(keys))]
            value = 128 + (i % 64)
            cluster.put(key, value)
            model[key] = value
        cluster.crash_leader(0)
        check_cluster_invariants(cluster)
        for key, want in sorted(model.items()):
            if cluster.get(key) != want:
                raise InvariantViolation(
                    f"post-failover read {key:#x} diverged from model")
        # Time travel: the retained cut still serves phase-1 values.
        for key in sorted(model1)[:24]:
            got = cluster.get(key, as_of_cut=cut_n)
            if got != model1[key]:
                raise InvariantViolation(
                    f"as-of cut {cut_n} read {key:#x}: got {got}, "
                    f"want {model1[key]}")
            tt_checks += 1
        cluster.quiesce()
        cluster.check_invariants()
    except InvariantViolation as exc:
        failures.append(str(exc))
    summary = cluster.stats().get("objstore", {})
    n_objects = summary.get("objects", 0) if isinstance(summary, dict) else 0
    cluster.close()
    detail = (f"cut {cut_n}, "
              f"{n_objects} objects, {tt_checks} time-travel reads, "
              f"{len(cluster.failover_reports)} failover(s)")
    if failures:
        return GateOutcome("objstore", "FAIL",
                           body="\n".join(failures + [detail]))
    return GateOutcome("objstore", "PASS", detail=detail)


def _run_effects(args: argparse.Namespace) -> GateOutcome:
    from repro.check.effects.gate import run_effects_gate, write_report

    result = run_effects_gate(strict=args.strict)
    if args.effects_report:
        write_report(result, args.effects_report)
    lines: List[str] = [f.format() for f in result.findings]
    if args.strict and result.baselined:
        lines.extend(
            f"{f.format()}  [baselined: {entry.reason}]"
            for f, entry in result.baselined)
    for entry in result.stale_baseline:
        lines.append(f"stale baseline entry: {entry.rule} {entry.function} "
                     f"({entry.reason}) -- remove it")
    if result.ok:
        return GateOutcome("effects", "PASS", detail=result.summary_line(),
                           body="\n".join(lines))
    lines.append(result.summary_line())
    return GateOutcome("effects", "FAIL", body="\n".join(lines))


_GATE_RUNNERS: "dict[str, Callable[[argparse.Namespace], GateOutcome]]" = {
    "lint": _run_lint,
    "types": _run_types,
    "sanitizer": _run_sanitizer_smoke,
    "cluster": _run_cluster_smoke,
    "objstore": _run_objstore_smoke,
    "effects": _run_effects,
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro check",
        description=("determinism lint + typing gate + sanitizer smoke run "
                     "+ cluster smoke run + objstore smoke run "
                     "+ effect-inference gate"))
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: src/repro)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog (lint + effects) and exit")
    p.add_argument("--explain", metavar="REPxxx",
                   help="print the long-form explanation of a rule and exit")
    p.add_argument("--rule", action="append", metavar="REPxxx",
                   help="restrict the lint to the given rule(s)")
    p.add_argument("--gate", action="append", metavar="NAME",
                   choices=GATE_NAMES,
                   help="run only the named gate(s); repeatable "
                        f"(choices: {', '.join(GATE_NAMES)})")
    p.add_argument("--skip-lint", action="store_true")
    p.add_argument("--skip-types", action="store_true")
    p.add_argument("--skip-sanitizer", action="store_true")
    p.add_argument("--skip-cluster", action="store_true")
    p.add_argument("--skip-objstore", action="store_true")
    p.add_argument("--skip-effects", action="store_true")
    p.add_argument("--strict", action="store_true",
                   help="effects gate: baselined findings also FAIL "
                        "(the weekly CI variant)")
    p.add_argument("--effects-report", metavar="PATH",
                   help="write the effects gate's JSON report to PATH")
    p.add_argument("--seed", type=int, default=0xC0FFEE,
                   help="seed of the sanitizer/cluster/objstore smoke "
                        "workloads")
    return p


def _explain_rule(rule: str) -> Optional[str]:
    from repro.check.effects.gate import EXPLANATIONS

    if rule in EXPLANATIONS:
        return EXPLANATIONS[rule]
    if rule in RULES:
        return f"{rule}: {RULES[rule]}"
    return None


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        from repro.check.effects.contracts import EFFECT_RULES

        for rule_id, description in sorted({**RULES, **EFFECT_RULES}.items()):
            print(f"{rule_id}  {description}")
        return 0
    if args.explain:
        text = _explain_rule(args.explain)
        if text is None:
            print(f"unknown rule: {args.explain}")
            return 2
        print(text)
        return 0
    if args.rule:
        unknown = [r for r in args.rule if r not in RULES]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}")
            return 2

    selected = tuple(args.gate) if args.gate else GATE_NAMES
    outcomes: List[GateOutcome] = []
    for name in GATE_NAMES:
        if name not in selected:
            continue
        if getattr(args, f"skip_{name}"):
            outcomes.append(GateOutcome(name, "SKIP",
                                        detail=f"--skip-{name}"))
            print(f"{name:<9}  SKIP (--skip-{name})")
            continue
        try:
            outcome = _GATE_RUNNERS[name](args)
        except Exception:  # one broken gate must not mask the others
            outcome = GateOutcome(name, "ERROR",
                                  body=traceback.format_exc().rstrip())
        outcomes.append(outcome)
        if outcome.body:
            print(outcome.body)
        annotation = f" ({outcome.detail})" if outcome.detail else ""
        print(f"{outcome.name:<9}  {outcome.status}{annotation}")

    n_failed = sum(1 for o in outcomes if o.failed)
    n_passed = sum(1 for o in outcomes if o.status == "PASS")
    n_skipped = sum(1 for o in outcomes if o.status == "SKIP")
    summary = f"{n_passed}/{len(outcomes)} gates passed"
    if n_skipped:
        summary += f", {n_skipped} skipped"
    if n_failed:
        bad = ", ".join(o.name for o in outcomes if o.failed)
        summary += f", {n_failed} failed ({bad})"
    print(summary)
    return 1 if n_failed else 0


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(main())
