"""AST-based determinism lint for the simulation (``repro check --lint``).

The paper's results are deterministic byte counts on a simulated clock
(:mod:`repro.storage.simdisk`); any stray wall-clock read, unseeded RNG or
nondeterministic iteration silently breaks reproducibility without failing a
single test.  This lint encodes the repo's determinism contract as mechanical
rules over ``src/repro``:

========  ==============================================================
REP001    no wall-clock time sources (``time.time``, ``datetime.now``...)
REP002    no unseeded/global RNG (module-level ``random.*``, ``Random()``)
REP003    no direct iteration over set displays/constructors
REP004    no float equality against simulated-time attributes
REP005    no mutable default arguments
REP006    no mutation of the frozen seed kernels (``repro.bench.reference``)
REP007    no bare ``except:``
REP008    no ``assert`` for structural checks (raise InvariantViolation)
========  ==============================================================

A finding on a line carrying ``# repro: noqa-REPxxx`` is suppressed; the
suppression is per-rule and per-line (see DESIGN.md for when to suppress vs
fix).  For decorated defs the marker may sit on any line of the decorator
block (findings anchored to the ``def`` line would otherwise need the
marker on a line the reader never wrote).  ``# repro: noqa-file-REPxxx``
anywhere in a file silences the rule for the whole file -- reserved for
modules whose *purpose* violates a rule (the bench harness's host timers).
Each rule has a fixture test in ``tests/test_check_lint.py`` proving it
fires on minimal bad code and stays quiet on the equivalent good code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.check.diagnostics import parse_noqa

#: Rule catalog: id -> one-line description (shown by ``repro check --list-rules``).
RULES: Dict[str, str] = {
    "REP001": "wall-clock time source; the simulated clock (SimClock) must be "
              "the only time source in src/repro",
    "REP002": "unseeded or process-global RNG; use random.Random(seed) / "
              "numpy default_rng(seed) instances",
    "REP003": "iteration over a set display/constructor; set order is "
              "nondeterministic across processes (sort first)",
    "REP004": "float equality (==/!=) against a simulated-time value; "
              "compare with <=/>= or an epsilon",
    "REP005": "mutable default argument (list/dict/set); defaults are shared "
              "across calls",
    "REP006": "mutation of the frozen seed kernels in repro.bench.reference; "
              "the reference copies must stay byte-identical to the seed",
    "REP007": "bare 'except:'; catch a concrete exception type",
    "REP008": "'assert' used for a structural check in non-test code; raise "
              "InvariantViolation so checks survive python -O",
}

#: Dotted call/attribute paths that read the wall clock (REP001).
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today", "date.today",
}
#: Names importable ``from time import ...`` that read the wall clock.
_WALL_CLOCK_IMPORTS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
             "perf_counter_ns", "process_time", "process_time_ns",
             "localtime", "gmtime"},
}

#: Module-level ``random`` functions drawing from the shared global RNG.
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "getrandbits", "randbytes", "seed",
    "vonmisesvariate", "paretovariate", "weibullvariate", "lognormvariate",
}

#: Attribute names treated as simulated-time values (REP004).
_SIM_TIME_ATTRS = {
    "now", "busy_until", "not_before", "debt_s", "sim_time_s", "sim_seconds",
    "clock_now", "seek_time_s", "bulk_seek_time_s", "lookahead_s",
}

@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor applying every REP rule to one module."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        #: Local names bound to the frozen reference module or its members.
        self._reference_names: Set[str] = set()
        self._is_reference_module = path.replace("\\", "/").endswith(
            "bench/reference.py")

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule, path=self.path,
            line=getattr(node, "lineno", 1), col=getattr(node, "col_offset", 0),
            message=message))

    # ------------------------------------------------------------ REP001/006
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "repro.bench.reference":
                self._reference_names.add(alias.asname or "repro")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        banned = _WALL_CLOCK_IMPORTS.get(module, set())
        for alias in node.names:
            if alias.name in banned:
                self._emit("REP001", node,
                           f"import of wall-clock source {module}.{alias.name}")
            if module == "random" and alias.name in _GLOBAL_RANDOM_FNS:
                self._emit("REP002", node,
                           f"import of global-RNG function random.{alias.name}")
        if module == "repro.bench.reference" or module == "repro.bench" and any(
                a.name == "reference" for a in node.names):
            for alias in node.names:
                if module == "repro.bench" and alias.name != "reference":
                    continue
                self._reference_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # ---------------------------------------------------------------- REP001
    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = _dotted_name(node)
        if dotted in _WALL_CLOCK:
            self._emit("REP001", node, f"wall-clock read via {dotted}")
        self.generic_visit(node)

    # ---------------------------------------------------------------- REP002
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        dotted = _dotted_name(func)
        if dotted is not None:
            head, _, tail = dotted.rpartition(".")
            if head == "random" and tail in _GLOBAL_RANDOM_FNS:
                self._emit("REP002", node,
                           f"call to global-RNG function random.{tail}")
            elif dotted in ("random.Random", "Random") and not node.args:
                self._emit("REP002", node,
                           "Random() constructed without a seed")
            elif tail == "default_rng" and not node.args:
                self._emit("REP002", node,
                           "default_rng() constructed without a seed")
            elif head.endswith("random") and head != "random" and \
                    tail in _GLOBAL_RANDOM_FNS | {"rand", "randn"}:
                # numpy.random.<fn> / np.random.<fn>: the global numpy RNG.
                self._emit("REP002", node,
                           f"call to global numpy RNG function {dotted}")
        self.generic_visit(node)

    # ---------------------------------------------------------------- REP003
    def _check_iter(self, iter_node: ast.AST) -> None:
        if isinstance(iter_node, ast.Set):
            self._emit("REP003", iter_node, "iteration over a set display")
        elif isinstance(iter_node, ast.Call):
            dotted = _dotted_name(iter_node.func)
            if dotted in ("set", "frozenset"):
                self._emit("REP003", iter_node,
                           f"iteration over {dotted}(...); wrap in sorted()")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    # ---------------------------------------------------------------- REP004
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, (left, right) in zip(node.ops, zip(operands, operands[1:])):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if isinstance(side, ast.Attribute) and \
                        side.attr in _SIM_TIME_ATTRS:
                    other = right if side is left else left
                    # `x.now is None`-style checks use `is`; equality against
                    # None is not a float comparison either.
                    if isinstance(other, ast.Constant) and other.value is None:
                        continue
                    self._emit("REP004", node,
                               f"float equality against simulated-time "
                               f"attribute .{side.attr}")
                    break
        self.generic_visit(node)

    # ---------------------------------------------------------------- REP005
    def _check_defaults(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self._emit("REP005", default, "mutable default argument")
            elif isinstance(default, ast.Call):
                dotted = _dotted_name(default.func)
                if dotted in ("list", "dict", "set", "bytearray",
                              "collections.defaultdict", "defaultdict",
                              "OrderedDict", "collections.OrderedDict"):
                    self._emit("REP005", default,
                               f"mutable default argument ({dotted}())")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # ---------------------------------------------------------------- REP006
    def _is_reference_target(self, target: ast.AST) -> bool:
        """Attribute assignment whose base resolves to the frozen module or a
        class/function imported from it (monkeypatching); instance attributes
        are fine -- instances are how the reference kernels are *used*."""
        if not isinstance(target, ast.Attribute):
            return False
        dotted = _dotted_name(target.value)
        if dotted is None:
            return False
        if dotted in ("repro.bench.reference",):
            return True
        root = dotted.split(".", 1)[0]
        return dotted in self._reference_names or (
            root in self._reference_names and "." in dotted)

    def _check_mutation_targets(self, node: ast.stmt,
                                targets: Iterable[ast.AST]) -> None:
        if self._is_reference_module:
            return
        for target in targets:
            if self._is_reference_target(target):
                self._emit("REP006", node,
                           "mutation of the frozen repro.bench.reference "
                           "seed kernels")

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_mutation_targets(node, node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutation_targets(node, [node.target])
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._check_mutation_targets(node, node.targets)
        self.generic_visit(node)

    # ---------------------------------------------------------------- REP007
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit("REP007", node, "bare 'except:'")
        self.generic_visit(node)

    # ---------------------------------------------------------------- REP008
    def visit_Assert(self, node: ast.Assert) -> None:
        self._emit("REP008", node,
                   "'assert' in engine code; raise InvariantViolation "
                   "(asserts vanish under python -O)")
        self.generic_visit(node)


def _decorated_def_ranges(tree: ast.Module) -> List[Tuple[int, int]]:
    """(first decorator line, def line) for every decorated def/class.

    A finding anywhere in such a range accepts a noqa marker on any line
    of the range: the AST anchors decorator-related findings to the
    ``def`` line, which is not where a reader would put the comment.
    """
    ranges: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)) and node.decorator_list:
            first = min(d.lineno for d in node.decorator_list)
            ranges.append((first, node.lineno))
    return ranges


def lint_source(source: str, path: str = "<string>", *,
                rules: Optional[Set[str]] = None) -> List[Finding]:
    """Lint one module's source; returns surviving findings, ordered."""
    tree = ast.parse(source, filename=path)
    visitor = _RuleVisitor(path)
    visitor.visit(tree)
    noqa = parse_noqa(source)
    def_ranges = _decorated_def_ranges(tree)
    out = []
    for finding in visitor.findings:
        if rules is not None and finding.rule not in rules:
            continue
        extra: List[int] = []
        for first, last in def_ranges:
            if first <= finding.line <= last:
                extra.extend(range(first, last + 1))
        if noqa.is_suppressed(finding.rule, finding.line, extra):
            continue
        out.append(finding)
    out.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return out


def default_lint_root() -> Path:
    """The ``src/repro`` tree of the installed/checked-out package."""
    import repro
    return Path(repro.__file__).resolve().parent


def iter_python_files(root: Path) -> List[Path]:
    return sorted(p for p in root.rglob("*.py") if "__pycache__" not in p.parts)


def lint_paths(paths: Iterable[Path], *,
               rules: Optional[Set[str]] = None) -> List[Finding]:
    """Lint files and directories; directories are walked recursively."""
    findings: List[Finding] = []
    for path in paths:
        path = Path(path)
        files = iter_python_files(path) if path.is_dir() else [path]
        for file in files:
            rel = str(file)
            findings.extend(lint_source(file.read_text(encoding="utf-8"),
                                        rel, rules=rules))
    return findings


def lint_repo(*, rules: Optional[Set[str]] = None) -> List[Finding]:
    """Lint the whole ``src/repro`` package (the repo's determinism gate)."""
    return lint_paths([default_lint_root()], rules=rules)
