"""Whole-program effect inference (``repro check --gate effects``).

The simulation-first methodology only holds if every code path obeys the
system contracts: the simulated clock is the only time source, every disk
and network byte is charged through a costing wrapper, all randomness
descends from an explicit seed, and every tracer span that opens is closed.
The per-module hypothesis tests prove these properties for the paths they
happen to exercise; this package proves them *statically* for every path.

Pipeline (all pure AST, no module is imported):

1. :mod:`repro.check.effects.callgraph` parses ``src/repro`` and builds an
   AST-level call graph: classes, attribute types, imports, and resolved
   call edges (including subclass overrides, so a call through a
   ``NullTracer``-annotated attribute also reaches ``Tracer``).
2. :mod:`repro.check.effects.infer` extracts *leaf* effects from intrinsic
   patterns (``clock.now`` stores, ``busy_until`` stores, ``SimDisk``
   counters, ``SimNetwork`` link reservations, RNG draws, wall-clock reads,
   tracer span opens/closes, attribute stores) and propagates them
   bottom-up through the call graph to a fixpoint.
3. :mod:`repro.check.effects.contracts` checks the declared contracts --
   :func:`effects` / :func:`observation_only` decorators plus the registry
   defaults -- and emits REP100-series findings.
4. :mod:`repro.check.effects.gate` applies ``# repro: noqa-REPxxx``
   suppressions and the committed baseline, and renders the JSON report
   consumed by CI.

Only :mod:`repro.check.effects.registry` is imported by engine modules at
runtime; its decorators are identity functions (they attach metadata and
return the function object unchanged), so annotating a function is
guaranteed not to change behavior.
"""

from __future__ import annotations

from repro.check.effects.registry import (
    ALL_EFFECTS,
    CLOCK_ADVANCE,
    DISK_CHARGE,
    HOST_TIME,
    NET_CHARGE,
    OBSERVATION_FORBIDDEN,
    RNG_DRAW,
    SPAN_BEGIN,
    SPAN_END,
    STATE_MUTATE,
    effects,
    observation_only,
)

__all__ = [
    "ALL_EFFECTS",
    "CLOCK_ADVANCE",
    "DISK_CHARGE",
    "HOST_TIME",
    "NET_CHARGE",
    "OBSERVATION_FORBIDDEN",
    "RNG_DRAW",
    "SPAN_BEGIN",
    "SPAN_END",
    "STATE_MUTATE",
    "effects",
    "observation_only",
    "run_effects_gate",
]


def run_effects_gate(*args: object, **kwargs: object) -> object:
    """Lazy alias for :func:`repro.check.effects.gate.run_effects_gate`.

    The analyzer proper is only imported when the gate actually runs, so
    engine modules importing the decorators stay cheap.
    """
    from repro.check.effects.gate import run_effects_gate as run
    return run(*args, **kwargs)  # type: ignore[arg-type]
