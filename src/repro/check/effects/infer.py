"""Leaf-effect extraction and bottom-up fixpoint propagation.

Effects originate at a handful of *intrinsic* shapes -- the places where
simulated time, charged bytes, randomness, host time or tracer spans enter
the program:

===============  ====================================================
CLOCK_ADVANCE    store to ``<clock>.now``; call to ``<clock>.advance``
DISK_CHARGE      store to ``<disk>.busy_until``; call to a raw
                 ``SimDisk`` costing method (``fg_io``, ``fg_stream``,
                 ``bg_grant``, ``bg_count``, ``sync_drain``, ``_count``)
NET_CHARGE       ``SimNetwork._enqueue`` (link-horizon reservation)
OBJSTORE_CHARGE  ``SimObjectStore._enqueue`` (store-channel reservation)
RNG_DRAW         method call on a ``random.Random`` / numpy Generator
                 receiver; module-global ``random.*`` / ``np.random.*``;
                 unseeded ``Random()`` / ``default_rng()``
HOST_TIME        ``time.time`` / ``perf_counter`` / ``datetime.now``...
SPAN_BEGIN/END   ``<tracer>.begin`` / ``<tracer>.end``
STATE_MUTATE     attribute/subscript store whose base escapes the local
                 frame (``self``, a parameter, a global)
===============  ====================================================

Receivers are typed via the call graph's attribute/annotation tables; when
a receiver cannot be typed, name heuristics (a chain ending in ``clock``,
``tracer``, ``rng``) catch the intrinsics -- an unknown receiver can hide
a *call* but not a repo-defined effect, because the effect's definition
site is itself analyzed.

Propagation is a plain worklist fixpoint over the call edges:
``effects(f) = leaves(f) | union(effects(g) for g called by f)``.
Nested functions (closures handed to the background pool) are charged to
their *defining* function, which matches the runtime: whoever submits the
job owns its debt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.check.effects.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    RNG_TYPES,
    _dotted,
)
from repro.check.effects.registry import (
    CLOCK_ADVANCE,
    DISK_CHARGE,
    HOST_TIME,
    NET_CHARGE,
    OBJSTORE_CHARGE,
    RNG_DRAW,
    SPAN_BEGIN,
    SPAN_END,
    STATE_MUTATE,
)
from repro.check.lint import _GLOBAL_RANDOM_FNS, _WALL_CLOCK

#: Raw SimDisk costing methods: calling one *is* touching the device.
RAW_DEVICE_METHODS: FrozenSet[str] = frozenset({
    "fg_io", "fg_stream", "bg_grant", "bg_count", "sync_drain", "_count",
})
#: Raw device methods that also advance the shared clock.
_RAW_DEVICE_CLOCK: FrozenSet[str] = frozenset({
    "fg_io", "fg_stream", "sync_drain",
})

#: Seeded effects for functions whose intrinsic nature is not pattern-
#: recognizable (the network link reservation mutates a dict entry).
SEED_EFFECTS: Dict[str, FrozenSet[str]] = {
    "repro.cluster.network.SimNetwork._enqueue": frozenset({NET_CHARGE}),
    "repro.objstore.store.SimObjectStore._enqueue":
        frozenset({OBJSTORE_CHARGE}),
}

_SIMDISK = "repro.storage.simdisk.SimDisk"
_SIMCLOCK = "repro.storage.simdisk.SimClock"


@dataclass(frozen=True)
class LeafSite:
    """One intrinsic effect occurrence inside a function body."""

    effect: str
    #: Site category: "clock-store", "clock-advance", "raw-device",
    #: "net-charge", "rng-draw", "rng-unseeded", "rng-global", "host-time",
    #: "span-begin", "span-end", "state-store", "seed".
    kind: str
    lineno: int
    col: int
    detail: str


@dataclass
class EffectInfo:
    """Per-function analysis result."""

    fn: FunctionInfo
    leaves: List[LeafSite] = field(default_factory=list)
    callees: Set[str] = field(default_factory=set)
    #: Fixpoint result: every effect reachable from this function.
    inferred: FrozenSet[str] = frozenset()

    @property
    def leaf_effects(self) -> FrozenSet[str]:
        return frozenset(site.effect for site in self.leaves)


class _FunctionScanner:
    """One pass over a single function body (nested defs excluded)."""

    def __init__(self, graph: CallGraph, info: FunctionInfo) -> None:
        self.graph = graph
        self.info = info
        self.mod: ModuleInfo = graph.modules[info.module]
        self.out = EffectInfo(fn=info)
        self.env: Dict[str, str] = {}
        #: Parameter names (stores through these are shared-state mutation).
        self.params: Set[str] = set()
        #: Names bound by assignment inside the frame (stores through these
        #: stay local).
        self.frame_locals: Set[str] = set()
        if info.cls is not None and not info.name.startswith("__new__"):
            self.env["self"] = info.cls.qualname
        args = info.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            self.params.add(arg.arg)
            t = graph.resolve_annotation(self.mod, arg.annotation)
            if t is not None:
                self.env[arg.arg] = t
        if args.vararg is not None:
            self.params.add(args.vararg.arg)
        if args.kwarg is not None:
            self.params.add(args.kwarg.arg)

    # ------------------------------------------------------------------ drive
    def scan(self) -> EffectInfo:
        self._collect_locals(self.info.node.body)
        for stmt in self.info.node.body:
            self._walk(stmt)
        seeded = SEED_EFFECTS.get(self.info.qualname)
        if seeded:
            for effect in sorted(seeded):
                self._leaf(effect, "seed", self.info.node,
                           "registry-seeded intrinsic")
        return self.out

    def _iter_nodes(self, node: ast.AST) -> "List[ast.AST]":
        """ast.walk that does not descend into nested function defs.

        Nested defs are analyzed as their own ``<locals>`` functions and
        charged to the definer via a synthetic call edge, so scanning
        their bodies here would double-count every leaf.
        """
        out: List[ast.AST] = []
        stack: List[ast.AST] = [node]
        while stack:
            cur = stack.pop()
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            out.append(cur)
            for child in ast.iter_child_nodes(cur):
                stack.append(child)
        return out

    def _collect_locals(self, body: List[ast.stmt]) -> None:
        """Names assigned in this frame, and their types when inferable."""
        for stmt in body:
            for node in self._iter_nodes(stmt):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    targets, value = list(node.targets), node.value
                elif isinstance(node, ast.AnnAssign) and \
                        isinstance(node.target, ast.Name):
                    targets, value = [node.target], node.value
                    t = self.graph.resolve_annotation(self.mod,
                                                      node.annotation)
                    if t is not None:
                        self.env.setdefault(node.target.id, t)
                elif isinstance(node, (ast.For, ast.comprehension)):
                    targets = [node.target]
                elif isinstance(node, ast.withitem) and \
                        node.optional_vars is not None:
                    targets = [node.optional_vars]
                for target in targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            self.frame_locals.add(name_node.id)
                if value is not None and len(targets) == 1 and \
                        isinstance(targets[0], ast.Name):
                    t = self._expr_type(value)
                    if t is not None:
                        self.env.setdefault(targets[0].id, t)

    # -------------------------------------------------------------- type eval
    def _expr_type(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.IfExp):
            return self._expr_type(expr.body) or self._expr_type(expr.orelse)
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._expr_type(expr.value)
            if base is not None:
                return self.graph.attr_type(base, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            dotted = _dotted(expr.func)
            if dotted is None:
                return None
            cls = self.graph.resolve_class(self.mod, dotted)
            if cls is not None:
                return cls
            resolved = self.graph.resolve_name(self.mod, dotted)
            if resolved is not None and resolved in self.graph.functions:
                target = self.graph.functions[resolved]
                target_mod = self.graph.modules[target.module]
                return self.graph.resolve_annotation(target_mod,
                                                     target.node.returns)
            return None
        return None

    # ---------------------------------------------------------------- leaves
    def _leaf(self, effect: str, kind: str, node: ast.AST,
              detail: str) -> None:
        self.out.leaves.append(LeafSite(
            effect=effect, kind=kind,
            lineno=getattr(node, "lineno", self.info.lineno),
            col=getattr(node, "col_offset", 0), detail=detail))

    def _root_name(self, expr: ast.expr) -> Optional[str]:
        while isinstance(expr, (ast.Attribute, ast.Subscript)):
            expr = expr.value
        if isinstance(expr, ast.Name):
            return expr.id
        return None

    def _check_store(self, target: ast.expr, node: ast.stmt) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(elt, node)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        if isinstance(target, ast.Attribute):
            base_t = self._expr_type(target.value)
            base_dotted = _dotted(target.value) or ""
            base_tail = base_dotted.rpartition(".")[2]
            # Object birth is not time passing: ``self.now = 0`` inside the
            # clock's own __init__ (or ``self.busy_until = 0`` in the
            # disk's) would otherwise leak CLOCK_ADVANCE / DISK_CHARGE
            # into every factory that constructs a simulation.
            if base_dotted == "self" and \
                    self.info.name in ("__init__", "__post_init__"):
                pass
            elif target.attr == "now" and (
                    base_t == _SIMCLOCK or base_tail == "clock" or
                    base_tail.endswith("clock") or
                    (base_dotted == "self" and self.info.cls is not None and
                     self.info.cls.name.endswith("Clock"))):
                self._leaf(CLOCK_ADVANCE, "clock-store", node,
                           f"store to {base_dotted or '<expr>'}.now")
            elif target.attr == "busy_until" and (
                    base_t == _SIMDISK or
                    base_tail.endswith("disk") or
                    (base_dotted == "self" and self.info.cls is not None and
                     self.info.cls.name.endswith("Disk"))):
                self._leaf(DISK_CHARGE, "device-store", node,
                           f"store to {base_dotted or '<expr>'}.busy_until")
        # Store escapes the local frame: self.x, param.x, global.x, or an
        # unresolvable chain -- all count as shared-state mutation.
        root = self._root_name(target)
        if root is None or root in self.params or \
                root not in self.frame_locals:
            self._leaf(STATE_MUTATE, "state-store", node,
                       f"store through non-local base {root or '<expr>'}")

    # ----------------------------------------------------------------- calls
    def _edge(self, target: FunctionInfo) -> None:
        self.out.callees.add(target.qualname)

    def _resolve_call(self, call: ast.Call) -> Tuple[List[FunctionInfo], str]:
        """(resolved targets, receiver-description) of one call."""
        func = call.func
        # super().method()
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Call) and \
                _dotted(func.value.func) == "super" and \
                self.info.cls is not None and self.info.cls.bases:
            return (self.graph.resolve_method(self.info.cls.bases[0],
                                              func.attr), "super()")
        dotted = _dotted(func)
        if isinstance(func, ast.Name):
            resolved = self.graph.resolve_name(self.mod, func.id)
            if resolved is not None:
                if resolved in self.graph.functions:
                    return [self.graph.functions[resolved]], func.id
                if resolved in self.graph.classes:
                    targets = []
                    for ctor in ("__init__", "__post_init__"):
                        targets.extend(
                            self.graph.resolve_method(resolved, ctor))
                    return targets, func.id
            return [], func.id
        if isinstance(func, ast.Attribute):
            receiver = func.value
            recv_t = self._expr_type(receiver)
            if recv_t is not None:
                if recv_t in self.graph.classes:
                    return (self.graph.resolve_method(recv_t, func.attr),
                            recv_t)
                return [], recv_t
            # Module-level function via dotted path.
            if dotted is not None:
                resolved = self.graph.resolve_name(self.mod, dotted)
                if resolved is not None:
                    if resolved in self.graph.functions:
                        return [self.graph.functions[resolved]], dotted
                    if resolved in self.graph.classes:
                        targets = []
                        for ctor in ("__init__", "__post_init__"):
                            targets.extend(
                                self.graph.resolve_method(resolved, ctor))
                        return targets, dotted
            return [], _dotted(receiver) or "<expr>"
        return [], "<expr>"

    def _check_call(self, call: ast.Call) -> None:
        func = call.func
        dotted = _dotted(func) or ""
        targets, recv = self._resolve_call(call)
        for target in targets:
            self._edge(target)

        # --- HOST_TIME: wall-clock reads, by dotted path or import alias.
        resolved_dotted = dotted
        if isinstance(func, ast.Name):
            imported = self.mod.imports.get(func.id)
            if imported is not None:
                resolved_dotted = imported
        if dotted in _WALL_CLOCK or resolved_dotted in _WALL_CLOCK:
            self._leaf(HOST_TIME, "host-time", call,
                       f"wall-clock read via {dotted or resolved_dotted}")

        # --- RNG: global module draws, unseeded constructors, typed draws.
        head, _, tail = dotted.rpartition(".")
        if head == "random" and tail in _GLOBAL_RANDOM_FNS:
            self._leaf(RNG_DRAW, "rng-global", call,
                       f"module-global random.{tail}")
        elif head.endswith("random") and head not in ("random", "") and \
                tail in _GLOBAL_RANDOM_FNS | {"rand", "randn"}:
            self._leaf(RNG_DRAW, "rng-global", call,
                       f"global numpy RNG {dotted}")
        if dotted in ("random.Random", "Random") or tail == "default_rng" \
                or dotted == "default_rng":
            if not call.args and not call.keywords:
                self._leaf(RNG_DRAW, "rng-unseeded", call,
                           f"{dotted}() constructed without a seed")
        if isinstance(func, ast.Attribute):
            recv_t = self._expr_type(func.value)
            recv_dotted = _dotted(func.value) or ""
            recv_tail = recv_dotted.rpartition(".")[2]
            if recv_t in RNG_TYPES:
                self._leaf(RNG_DRAW, "rng-draw", call,
                           f"draw {func.attr} on {recv_t} receiver")
            elif recv_t is None and (recv_tail == "rng" or
                                     recv_tail.endswith("_rng")):
                self._leaf(RNG_DRAW, "rng-draw", call,
                           f"draw {func.attr} on rng-named receiver "
                           f"{recv_dotted}")

            # --- CLOCK_ADVANCE via <clock>.advance(...)
            if func.attr == "advance" and (
                    recv_t == _SIMCLOCK or recv_tail == "clock"):
                self._leaf(CLOCK_ADVANCE, "clock-advance", call,
                           f"clock advance via {recv_dotted or recv_t}")

            # --- raw device calls (REP102 sites + fallback effects)
            if func.attr in RAW_DEVICE_METHODS and (
                    recv_t == _SIMDISK or
                    (recv_t is None and (recv_tail in ("disk", "_disk") or
                                         recv_tail.endswith("disk")))):
                self._leaf(DISK_CHARGE, "raw-device", call,
                           f"raw SimDisk.{func.attr} via "
                           f"{recv_dotted or recv_t}")
                if func.attr in _RAW_DEVICE_CLOCK and recv_t != _SIMDISK:
                    # Resolved SimDisk calls get CLOCK_ADVANCE through the
                    # call edge; unresolved receivers need the fallback.
                    self._leaf(CLOCK_ADVANCE, "raw-device", call,
                               f"clock moves inside SimDisk.{func.attr}")

            # --- tracer spans
            tracer_recv = (recv_t is not None and
                           self.graph.classes.get(recv_t) is not None and
                           "Tracer" in self.graph.classes[recv_t].name) or \
                          "tracer" in recv_dotted.split(".")
            if tracer_recv and func.attr == "begin":
                self._leaf(SPAN_BEGIN, "span-begin", call,
                           f"span begin on {recv_dotted or recv_t}")
            elif tracer_recv and func.attr == "end":
                self._leaf(SPAN_END, "span-end", call,
                           f"span end on {recv_dotted or recv_t}")

    # ----------------------------------------------------------------- walk
    def _walk(self, stmt: ast.stmt) -> None:
        nodes = self._iter_nodes(stmt)
        # An ``Attribute`` that is the ``.func`` of a call is already
        # handled by ``_check_call``; only *bare* references (a wall-clock
        # function passed around as a value) go through the Load branch.
        call_funcs = {id(n.func) for n in nodes if isinstance(n, ast.Call)}
        for node in nodes:
            if isinstance(node, ast.Call):
                self._check_call(node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._check_store(target, node)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                self._check_store(node.target, node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._check_store(target, node)
            elif isinstance(node, ast.Attribute) and \
                    isinstance(node.ctx, ast.Load) and \
                    id(node) not in call_funcs:
                dotted = _dotted(node)
                if dotted in _WALL_CLOCK:
                    self._leaf(HOST_TIME, "host-time", node,
                               f"wall-clock reference {dotted}")


def analyze_function(graph: CallGraph, info: FunctionInfo) -> EffectInfo:
    """Leaf effects and call edges of one function."""
    out = _FunctionScanner(graph, info).scan()
    # A nested def is charged to its definer (closure submitted as a job).
    prefix = f"{info.qualname}.<locals>."
    for qual in graph.functions:
        if qual.startswith(prefix) and \
                "<locals>" not in qual[len(prefix):]:
            out.callees.add(qual)
    return out


def infer_effects(graph: CallGraph) -> Dict[str, EffectInfo]:
    """Whole-program fixpoint: qualname -> :class:`EffectInfo`."""
    table: Dict[str, EffectInfo] = {}
    for qual, info in graph.functions.items():
        table[qual] = analyze_function(graph, info)
    # Reverse edges for the worklist.
    callers: Dict[str, Set[str]] = {}
    for qual, eff in table.items():
        for callee in eff.callees:
            if callee in table:
                callers.setdefault(callee, set()).add(qual)
    # Initialize with leaves, then propagate to fixpoint.
    current: Dict[str, Set[str]] = {
        qual: set(eff.leaf_effects) for qual, eff in table.items()}
    worklist = list(table)
    in_list = set(worklist)
    while worklist:
        qual = worklist.pop()
        in_list.discard(qual)
        eff = table[qual]
        combined = set(eff.leaf_effects)
        for callee in eff.callees:
            if callee in current:
                combined |= current[callee]
        if combined != current[qual]:
            current[qual] = combined
            for caller in callers.get(qual, ()):
                if caller not in in_list:
                    worklist.append(caller)
                    in_list.add(caller)
    for qual, eff in table.items():
        eff.inferred = frozenset(current[qual])
    return table
