"""Effect names and the contract decorators (the only runtime surface).

Everything else in :mod:`repro.check.effects` is a static analyzer that
reads source text; this module is what engine code imports.  Both
decorators are *identity* functions: they attach metadata attributes used
by tests and tooling and return the function object itself, so decorating
a function provably cannot change its behavior (see
``tests/test_check_effects.py::test_decorators_are_identity``).

The analyzer does not import the decorated modules -- it recognizes the
decorators syntactically -- so the metadata attributes exist purely for
runtime introspection and the behavior-equivalence proof.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Tuple, TypeVar

#: The function's call subtree advances the simulated clock.
CLOCK_ADVANCE = "CLOCK_ADVANCE"
#: The subtree charges simulated device time or bytes (SimDisk).
DISK_CHARGE = "DISK_CHARGE"
#: The subtree reserves simulated network link time or bytes (SimNetwork).
NET_CHARGE = "NET_CHARGE"
#: The subtree reserves simulated object-store channel time or bytes
#: (SimObjectStore).
OBJSTORE_CHARGE = "OBJSTORE_CHARGE"
#: The subtree draws from a random number generator.
RNG_DRAW = "RNG_DRAW"
#: The subtree reads the host wall clock (bench harness only).
HOST_TIME = "HOST_TIME"
#: The subtree opens a tracer span directly (begin without a local end).
SPAN_BEGIN = "SPAN_BEGIN"
#: The subtree closes a tracer span directly (end without a local begin).
SPAN_END = "SPAN_END"
#: The subtree mutates non-local state (attribute/subscript stores).
STATE_MUTATE = "STATE_MUTATE"

#: Every effect the lattice tracks (the lattice is the powerset of this,
#: ordered by inclusion; join is set union).
ALL_EFFECTS: FrozenSet[str] = frozenset({
    CLOCK_ADVANCE, DISK_CHARGE, NET_CHARGE, OBJSTORE_CHARGE, RNG_DRAW,
    HOST_TIME, SPAN_BEGIN, SPAN_END, STATE_MUTATE,
})

#: Effects an ``@observation_only`` function must not have, directly or
#: transitively.  ``STATE_MUTATE`` is deliberately allowed: observers may
#: update their *own* buffers (the sanitizer appends violations, samplers
#: append rows) -- what they must never do is move the clock, charge a
#: byte, or perturb the RNG stream.
OBSERVATION_FORBIDDEN: FrozenSet[str] = frozenset({
    CLOCK_ADVANCE, DISK_CHARGE, NET_CHARGE, OBJSTORE_CHARGE, RNG_DRAW,
    HOST_TIME,
})

F = TypeVar("F", bound=Callable[..., object])


def effects(*names: str) -> Callable[[F], F]:
    """Declare the effect contract of a function.

    ``@effects("DISK_CHARGE", "CLOCK_ADVANCE")`` asserts the function's
    inferred whole-subtree effects are a subset of the declared set; the
    effects gate reports REP100 when inference finds more.  Declaring
    ``SPAN_BEGIN`` / ``SPAN_END`` additionally marks a deliberately
    unbalanced span half (a job span opened at activation and closed at
    retire), which exempts the function from the REP104 balance check.

    The decorator returns ``fn`` unchanged.
    """
    declared = frozenset(names)
    unknown = declared - ALL_EFFECTS
    if unknown:
        raise ValueError(
            f"unknown effect name(s): {', '.join(sorted(unknown))}; "
            f"choose from {', '.join(sorted(ALL_EFFECTS))}")

    def mark(fn: F) -> F:
        fn.__effect_contract__ = declared  # type: ignore[attr-defined]
        return fn

    return mark


def observation_only(fn: F) -> F:
    """Declare a function observation-only: it reports, it never perturbs.

    The effects gate (REP101) verifies the function's whole call subtree
    is free of :data:`OBSERVATION_FORBIDDEN` effects -- it cannot advance
    the simulated clock, charge device or network time, read the host
    clock, or draw randomness.  Mutating its own buffers is allowed.

    The decorator returns ``fn`` unchanged.
    """
    fn.__observation_only__ = True  # type: ignore[attr-defined]
    return fn


#: Qualified-name prefixes that are observation-only *by registry* (whole
#: modules whose every function is an exporter/formatter; decorating each
#: one would be noise).  A function under one of these prefixes is held to
#: the same REP101 contract as an ``@observation_only`` decoration.
OBSERVATION_ONLY_PREFIXES: Tuple[str, ...] = (
    "repro.obs.export.",
    "repro.obs.stability.",
    "repro.check.diagnostics.",
    "repro.metrics.stalls.",
    "repro.metrics.prom.",
    "repro.objstore.report.",
)

#: Registry-declared effect contracts for functions that cannot carry a
#: decorator (e.g. properties of frozen dataclasses).  Maps the function's
#: fully qualified name to its declared effect set.
DECLARED_CONTRACTS: Dict[str, FrozenSet[str]] = {}
