"""Contract checking over the inferred effect table (REP100-series).

=========  ===========================================================
REP100     inferred effects exceed the ``@effects(...)`` declaration
REP101     ``@observation_only`` subtree has a forbidden effect
REP102     raw ``SimDisk`` costing call outside ``repro.storage``
REP103     RNG that does not descend from an explicit seed
REP104     tracer ``begin`` not balanced by ``end`` on every path
REP105     host wall-clock read without an ``@effects("HOST_TIME")``
=========  ===========================================================

REP104 is the only *intra*-procedural check: it walks a simplified CFG of
any function that opens or closes spans directly and verifies the net
open-count is zero on every explicit path (fall-through and every
``return``).  Functions that declare ``SPAN_BEGIN`` / ``SPAN_END`` are
deliberately one-sided (the background pool opens a job span at activation
and closes it at retire) and are exempt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.check.effects.callgraph import CallGraph, FunctionInfo
from repro.check.effects.infer import EffectInfo
from repro.check.effects.registry import (
    DECLARED_CONTRACTS,
    HOST_TIME,
    OBSERVATION_FORBIDDEN,
    OBSERVATION_ONLY_PREFIXES,
    SPAN_BEGIN,
    SPAN_END,
)

#: Rule catalog: id -> one-line description.
EFFECT_RULES: Dict[str, str] = {
    "REP100": "inferred effects exceed the function's @effects(...) "
              "declaration",
    "REP101": "@observation_only function reaches a clock/charge/RNG/"
              "host-time effect",
    "REP102": "raw SimDisk costing call outside repro.storage; go through "
              "a Runtime charging wrapper",
    "REP103": "RNG does not descend from an explicit seed (bare Random()/"
              "default_rng() or module-global draw)",
    "REP104": "tracer span begin not balanced by end on every explicit "
              "path in the function",
    "REP105": "host wall-clock read without an @effects(\"HOST_TIME\") "
              "declaration",
}


@dataclass(frozen=True)
class EffectFinding:
    """One effects-gate finding."""

    rule: str
    path: str
    line: int
    col: int
    function: str
    message: str
    #: Extra source lines whose ``# repro: noqa-REPxxx`` also suppresses
    #: this finding (the decorator range of the annotated def).
    noqa_lines: Tuple[int, ...] = ()

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"[{self.function}] {self.message}")


def _is_observation_only(fn: FunctionInfo) -> bool:
    if fn.obs_only:
        return True
    return any(fn.qualname.startswith(prefix)
               for prefix in OBSERVATION_ONLY_PREFIXES)


def _declared_contract(fn: FunctionInfo) -> Optional[FrozenSet[str]]:
    if fn.declared is not None:
        return fn.declared
    return DECLARED_CONTRACTS.get(fn.qualname)


def witness_path(table: Dict[str, EffectInfo], start: str,
                 effect: str) -> List[str]:
    """Shortest call chain from ``start`` to a leaf carrying ``effect``."""
    parent: Dict[str, Optional[str]] = {start: None}
    queue = [start]
    goal: Optional[str] = None
    while queue:
        cur = queue.pop(0)
        eff = table.get(cur)
        if eff is None:
            continue
        if effect in eff.leaf_effects:
            goal = cur
            break
        for callee in sorted(eff.callees):
            if callee not in parent and callee in table and \
                    effect in table[callee].inferred:
                parent[callee] = cur
                queue.append(callee)
    if goal is None:
        return [start]
    chain: List[str] = []
    node: Optional[str] = goal
    while node is not None:
        chain.append(node)
        node = parent[node]
    return list(reversed(chain))


def _short(qual: str) -> str:
    """Trailing two path components of a qualname, for readable chains."""
    parts = qual.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qual


def _chain_str(chain: List[str]) -> str:
    return " -> ".join(_short(q) for q in chain)


# --------------------------------------------------------------- REP104 CFG
class _SpanBalance:
    """Net span-delta analysis over a simplified CFG.

    Tracks the set of possible ``begin - end`` counts along explicit
    control flow.  Exception edges are not modeled (the runtime closes
    abandoned spans with synthetic ends); widening caps the set size so
    pathological functions simply opt out of the check.
    """

    _CAP = 16

    def __init__(self, deltas: Dict[Tuple[int, int], int]) -> None:
        #: (lineno, col) of a span call -> +1 (begin) / -1 (end).
        self.deltas = deltas
        self.return_deltas: Set[int] = set()
        self.bailed = False

    def _stmt_calls(self, stmt: ast.stmt) -> int:
        """Sum of span deltas in one simple statement."""
        total = 0
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                total += self.deltas.get(
                    (node.lineno, node.col_offset), 0)
        return total

    def _widen(self, s: Set[int]) -> Set[int]:
        if len(s) > self._CAP:
            self.bailed = True
            return {0}
        return s

    def seq(self, body: List[ast.stmt], entry: int = 0) -> Set[int]:
        """Possible *absolute* fall-through deltas of a statement sequence.

        ``entry`` is the delta already accumulated when control reaches
        the sequence, so a ``return`` inside a nested branch records the
        true absolute count (a begin leaked before an early return is an
        imbalance even though the branch's own delta is zero).
        """
        state: Set[int] = {entry}
        for stmt in body:
            if not state:
                break  # all paths returned/raised
            state = self._widen({s + d for s in state
                                 for d in self.stmt(stmt, s)})
        return state

    def stmt(self, stmt: ast.stmt, entry: int) -> Set[int]:
        """Possible deltas *added by* one statement; records returns."""
        if isinstance(stmt, ast.Return):
            d = self._stmt_calls(stmt)
            self.return_deltas.add(entry + d)
            return set()
        if isinstance(stmt, ast.Raise):
            return set()
        if isinstance(stmt, ast.If):
            t = self._test_delta(stmt.test)
            out = self.seq(stmt.body, entry + t)
            out |= self.seq(stmt.orelse, entry + t)
            return self._widen({o - entry for o in out})
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            body = {b - entry for b in self.seq(stmt.body, entry)}
            if any(d != 0 for d in body):
                # A net-nonzero loop body is unbalanced for some iteration
                # count; surface it as an imbalance at the loop head.
                self.return_deltas.add(entry + next(
                    d for d in sorted(body) if d != 0))
            reps = {0} | body
            orelse = {o - entry for o in self.seq(stmt.orelse, entry)}
            return self._widen(reps | {b + e for b in reps for e in orelse})
        if isinstance(stmt, ast.Try):
            body = {b - entry for b in self.seq(stmt.body, entry)}
            paths: Set[int] = set(body)
            for handler in stmt.handlers:
                paths |= {h - entry
                          for h in self.seq(handler.body, entry)}
            if stmt.orelse:
                paths |= {b + o - entry for b in body
                          for o in self.seq(stmt.orelse, entry)}
            if stmt.finalbody:
                fins = {f - entry for f in self.seq(stmt.finalbody, entry)}
                paths = {p + f for p in (paths or {0}) for f in fins}
            return self._widen(paths or {0})
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            base = self._stmt_calls_items(stmt)
            return self._widen({o - entry
                                for o in self.seq(stmt.body, entry + base)})
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return {0}
        match_type = getattr(ast, "Match", None)
        if match_type is not None and isinstance(stmt, match_type):
            out: Set[int] = {0}
            for case in stmt.cases:  # type: ignore[attr-defined]
                out |= {c - entry for c in self.seq(case.body, entry)}
            return self._widen(out)
        return {self._stmt_calls(stmt)}

    def _test_delta(self, test: ast.expr) -> int:
        total = 0
        for node in ast.walk(test):
            if isinstance(node, ast.Call):
                total += self.deltas.get((node.lineno, node.col_offset), 0)
        return total

    def _stmt_calls_items(self, stmt: "ast.With | ast.AsyncWith") -> int:
        total = 0
        for item in stmt.items:
            for node in ast.walk(item):
                if isinstance(node, ast.Call):
                    total += self.deltas.get(
                        (node.lineno, node.col_offset), 0)
        return total

    def check(self, fn_body: List[ast.stmt]) -> List[int]:
        """Unbalanced exit deltas (empty when every path nets zero)."""
        falls = self.seq(fn_body)
        if self.bailed:
            return []
        bad = sorted(d for d in falls | self.return_deltas if d != 0)
        return bad


def _check_span_balance(eff: EffectInfo) -> Optional[EffectFinding]:
    fn = eff.fn
    declared = _declared_contract(fn) or frozenset()
    if SPAN_BEGIN in declared or SPAN_END in declared:
        return None
    deltas: Dict[Tuple[int, int], int] = {}
    for site in eff.leaves:
        if site.kind == "span-begin":
            deltas[(site.lineno, site.col)] = 1
        elif site.kind == "span-end":
            deltas[(site.lineno, site.col)] = -1
    if not deltas:
        return None
    analysis = _SpanBalance(deltas)
    bad = analysis.check(fn.node.body)
    if not bad:
        return None
    return EffectFinding(
        rule="REP104", path=fn.path, line=fn.lineno, col=fn.node.col_offset,
        function=fn.qualname,
        message=(f"span begin/end unbalanced: net delta(s) "
                 f"{', '.join(str(d) for d in bad)} on some explicit path; "
                 f"declare @effects(\"SPAN_BEGIN\"/\"SPAN_END\") if the "
                 f"span is closed elsewhere"),
        noqa_lines=tuple(range(fn.first_lineno, fn.lineno + 1)))


# ------------------------------------------------------------------- driver
def check_contracts(graph: CallGraph,
                    table: Dict[str, EffectInfo]) -> List[EffectFinding]:
    findings: List[EffectFinding] = []
    for qual in sorted(table):
        eff = table[qual]
        fn = eff.fn
        def_lines = tuple(range(fn.first_lineno, fn.lineno + 1))
        declared = _declared_contract(fn)

        # REP100 -- declaration must cover everything inferred.
        if declared is not None:
            extra = eff.inferred - declared
            if extra:
                chains = "; ".join(
                    f"{e} via {_chain_str(witness_path(table, qual, e))}"
                    for e in sorted(extra))
                findings.append(EffectFinding(
                    rule="REP100", path=fn.path, line=fn.lineno,
                    col=fn.node.col_offset, function=qual,
                    message=f"undeclared effect(s): {chains}",
                    noqa_lines=def_lines))

        # REP101 -- observation-only subtrees must not perturb.
        if _is_observation_only(fn):
            bad = eff.inferred & OBSERVATION_FORBIDDEN
            if bad:
                chains = "; ".join(
                    f"{e} via {_chain_str(witness_path(table, qual, e))}"
                    for e in sorted(bad))
                findings.append(EffectFinding(
                    rule="REP101", path=fn.path, line=fn.lineno,
                    col=fn.node.col_offset, function=qual,
                    message=f"observation-only contract violated: {chains}",
                    noqa_lines=def_lines))

        # REP102 -- raw device calls stay inside the storage package.
        if not fn.module.startswith("repro.storage"):
            for site in eff.leaves:
                if site.kind == "raw-device":
                    findings.append(EffectFinding(
                        rule="REP102", path=fn.path, line=site.lineno,
                        col=site.col, function=qual,
                        message=f"{site.detail}; charge through "
                                f"Runtime.fg_read_blocks/bg_write_run/"
                                f"bg_read_run instead"))
                    break  # one finding per function is enough

        # REP103 -- randomness descends from an explicit seed.
        for site in eff.leaves:
            if site.kind in ("rng-global", "rng-unseeded"):
                findings.append(EffectFinding(
                    rule="REP103", path=fn.path, line=site.lineno,
                    col=site.col, function=qual, message=site.detail))

        # REP104 -- span balance.
        span_finding = _check_span_balance(eff)
        if span_finding is not None:
            findings.append(span_finding)

        # REP105 -- host time must be declared.
        if declared is None or HOST_TIME not in declared:
            for site in eff.leaves:
                if site.kind == "host-time":
                    findings.append(EffectFinding(
                        rule="REP105", path=fn.path, line=site.lineno,
                        col=site.col, function=qual,
                        message=f"{site.detail}; declare "
                                f"@effects(\"HOST_TIME\") on the harness "
                                f"function or use the simulated clock",
                        noqa_lines=def_lines))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
