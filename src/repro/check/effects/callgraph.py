"""AST-level call graph over ``src/repro`` (no module is ever imported).

The effect pass needs to know, for every function in the repo, which other
repo functions it may call.  Python gives no static types, so the graph is
built from three cooperating name-resolution layers:

1. **Module symbols** -- per-module tables of defined classes/functions and
   of imports (including ``if TYPE_CHECKING:`` imports, which is where the
   storage stack declares its attribute types).
2. **Class attribute types** -- for each class, ``self.x = SomeClass(...)``
   assignments, ``self.x: T`` annotations and dataclass field annotations
   give attributes a static type, so ``self.disk.fg_io(...)`` resolves
   precisely.
3. **Conservative dispatch** -- a call through a statically-typed receiver
   resolves to the method on that class *plus every override in its repo
   subclasses* (a ``NullTracer``-annotated attribute may hold a ``Tracer``
   at runtime, and the effect system must see the recording path).

Unresolvable calls (builtins, dict/list methods, callbacks) are treated as
effect-free; the intrinsic *leaf* patterns in :mod:`.infer` catch the
primitive effects by shape, so unknown receivers cannot hide a clock or a
charge that originates in this repo.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

#: External types the analyzer tracks by name (RNG receivers).
RNG_TYPES: FrozenSet[str] = frozenset({
    "random.Random", "numpy.random.Generator",
})

#: External constructors with a known instance type.
_EXTERNAL_CONSTRUCTORS: Dict[str, str] = {
    "random.Random": "random.Random",
    "Random": "random.Random",
    "default_rng": "numpy.random.Generator",
    "numpy.random.default_rng": "numpy.random.Generator",
    "np.random.default_rng": "numpy.random.Generator",
}


@dataclass
class FunctionInfo:
    """One function or method (or nested function) in the repo."""

    qualname: str
    module: str
    path: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: Optional["ClassInfo"] = None
    #: Qualname of the enclosing function for nested defs, else None.
    parent: Optional[str] = None
    #: Effect contract from an ``@effects(...)`` decorator, else None.
    declared: Optional[FrozenSet[str]] = None
    #: True when decorated ``@observation_only``.
    obs_only: bool = False

    @property
    def lineno(self) -> int:
        return self.node.lineno

    @property
    def first_lineno(self) -> int:
        """First source line of the def, decorators included."""
        decs = self.node.decorator_list
        return min([self.node.lineno] + [d.lineno for d in decs])


@dataclass
class ClassInfo:
    """One class defined in the repo."""

    qualname: str
    module: str
    name: str
    #: Base-class expressions as written (resolved lazily by the graph).
    base_names: List[str] = field(default_factory=list)
    #: Resolved repo base classes (qualnames), in MRO-ish DFS order.
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Inferred attribute types: attr name -> type qualname.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module."""

    name: str
    path: str
    tree: ast.Module
    source: str
    #: Local name -> dotted target ("repro.x.Cls", "repro.x" or "random").
    imports: Dict[str, str] = field(default_factory=dict)
    #: Top-level (and nested) functions defined here, by qualname.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Classes defined here, by bare name.
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _decorator_name(dec: ast.expr) -> Optional[str]:
    """Trailing name of a decorator expression (``effects`` for
    ``@check.effects(...)`` and ``@effects(...)`` alike)."""
    target = dec.func if isinstance(dec, ast.Call) else dec
    dotted = _dotted(target)
    if dotted is None:
        return None
    return dotted.rpartition(".")[2]


def _contract_of(node: ast.FunctionDef | ast.AsyncFunctionDef,
                 ) -> Tuple[Optional[FrozenSet[str]], bool]:
    """(declared effect set, observation_only) from the decorator list."""
    declared: Optional[FrozenSet[str]] = None
    obs = False
    for dec in node.decorator_list:
        name = _decorator_name(dec)
        if name == "observation_only":
            obs = True
        elif name == "effects" and isinstance(dec, ast.Call):
            names = {a.value for a in dec.args
                     if isinstance(a, ast.Constant) and isinstance(a.value, str)}
            declared = frozenset(names)
    return declared, obs


class CallGraph:
    """All modules under one root, with cross-module name resolution."""

    def __init__(self, root: Path) -> None:
        #: Root package directory (the ``repro`` package itself).
        self.root = root
        self.root_package = root.name
        self.modules: Dict[str, ModuleInfo] = {}
        #: Every class in the repo, by qualified name.
        self.classes: Dict[str, ClassInfo] = {}
        #: Every function in the repo, by qualified name.
        self.functions: Dict[str, FunctionInfo] = {}
        #: class qualname -> direct repo subclasses' qualnames.
        self.subclasses: Dict[str, List[str]] = {}
        #: method name -> classes defining it (conservative dispatch aid).
        self._method_index: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------ build
    @classmethod
    def build(cls, root: Path) -> "CallGraph":
        graph = cls(root)
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            graph._index_module(path)
        graph._resolve_bases()
        graph._infer_attr_types()
        return graph

    def _module_name(self, path: Path) -> str:
        rel = path.relative_to(self.root)
        parts = [self.root_package, *rel.parts]
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][:-3]
        return ".".join(parts)

    def _index_module(self, path: Path) -> None:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        mod = ModuleInfo(name=self._module_name(path), path=str(path),
                         tree=tree, source=source)
        self.modules[mod.name] = mod
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".", 1)[0]
                    mod.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    mod.imports[alias.asname or alias.name] = \
                        f"{base}.{alias.name}" if base else alias.name
        self._index_scope(mod, tree.body, prefix=mod.name, cls=None,
                          parent=None)

    def _index_scope(self, mod: ModuleInfo, body: List[ast.stmt], *,
                     prefix: str, cls: Optional[ClassInfo],
                     parent: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{node.name}"
                declared, obs = _contract_of(node)
                info = FunctionInfo(
                    qualname=qual, module=mod.name, path=mod.path,
                    name=node.name, node=node, cls=cls, parent=parent,
                    declared=declared, obs_only=obs)
                self.functions[qual] = info
                mod.functions[qual] = info
                if cls is not None and parent is None:
                    cls.methods[node.name] = info
                # Nested defs become their own nodes under <locals>.
                self._index_scope(mod, node.body,
                                  prefix=f"{qual}.<locals>", cls=cls,
                                  parent=qual)
            elif isinstance(node, ast.ClassDef) and cls is None and \
                    parent is None:
                qual = f"{prefix}.{node.name}"
                cinfo = ClassInfo(qualname=qual, module=mod.name,
                                  name=node.name)
                for base in node.bases:
                    dotted = _dotted(base)
                    if dotted is not None:
                        cinfo.base_names.append(dotted)
                self.classes[qual] = cinfo
                mod.classes[node.name] = cinfo
                self._index_scope(mod, node.body, prefix=qual, cls=cinfo,
                                  parent=None)
            elif isinstance(node, (ast.If, ast.Try, ast.With)):
                # Conditionally-defined module-level functions still count.
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, ast.stmt):
                        self._index_scope(mod, [sub], prefix=prefix, cls=cls,
                                          parent=parent)

    # ------------------------------------------------------- name resolution
    def resolve_name(self, mod: ModuleInfo, dotted: str) -> Optional[str]:
        """Resolve a dotted name used in ``mod`` to a global qualname.

        Returns a class/function qualname, a module name, or an external
        dotted name (``random.Random``); None when nothing matches.
        """
        head, _, rest = dotted.partition(".")
        # Local class or function?
        if head in mod.classes:
            return self._member(mod.classes[head].qualname, rest)
        local_fn = f"{mod.name}.{head}"
        if local_fn in self.functions and not rest:
            return local_fn
        target = mod.imports.get(head)
        if target is None:
            return None
        full = f"{target}.{rest}" if rest else target
        return self._canonical(full)

    def _member(self, qual: str, rest: str) -> str:
        return f"{qual}.{rest}" if rest else qual

    def _canonical(self, dotted: str) -> str:
        """Map a dotted path onto a known class/function/module if possible."""
        if dotted in self.classes or dotted in self.functions or \
                dotted in self.modules:
            return dotted
        # repro.table.merge.merge_runs style: module prefix + member.
        head, _, tail = dotted.rpartition(".")
        if head in self.modules:
            mod = self.modules[head]
            if tail in mod.classes:
                return mod.classes[tail].qualname
            fn = f"{head}.{tail}"
            if fn in self.functions:
                return fn
            # Re-exported name (package __init__): follow one hop.
            reexport = mod.imports.get(tail)
            if reexport is not None and reexport != dotted:
                return self._canonical(reexport)
        return dotted

    def resolve_class(self, mod: ModuleInfo, dotted: str) -> Optional[str]:
        resolved = self.resolve_name(mod, dotted)
        if resolved is not None and resolved in self.classes:
            return resolved
        if dotted in _EXTERNAL_CONSTRUCTORS:
            return _EXTERNAL_CONSTRUCTORS[dotted]
        if resolved in RNG_TYPES:
            return resolved
        return None

    # ----------------------------------------------------------- class layer
    def _resolve_bases(self) -> None:
        for cinfo in self.classes.values():
            mod = self.modules[cinfo.module]
            for base_name in cinfo.base_names:
                base = self.resolve_class(mod, base_name)
                if base is not None and base in self.classes:
                    cinfo.bases.append(base)
                    self.subclasses.setdefault(base, []).append(
                        cinfo.qualname)
        for cinfo in self.classes.values():
            for name in cinfo.methods:
                self._method_index.setdefault(name, []).append(
                    cinfo.qualname)

    def mro(self, qual: str) -> Iterator[ClassInfo]:
        """DFS over the repo part of the class hierarchy (cycle-safe)."""
        seen: Set[str] = set()
        stack = [qual]
        while stack:
            cur = stack.pop(0)
            if cur in seen or cur not in self.classes:
                continue
            seen.add(cur)
            cinfo = self.classes[cur]
            yield cinfo
            stack.extend(cinfo.bases)

    def all_subclasses(self, qual: str) -> Iterator[str]:
        seen: Set[str] = set()
        stack = list(self.subclasses.get(qual, ()))
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            yield cur
            stack.extend(self.subclasses.get(cur, ()))

    def resolve_method(self, cls_qual: str, method: str) -> List[FunctionInfo]:
        """Targets of ``obj.method()`` when ``obj``'s static type is known.

        The first definition found along the MRO, plus every override in a
        repo subclass of the static type (conservative dynamic dispatch).
        """
        targets: List[FunctionInfo] = []
        for cinfo in self.mro(cls_qual):
            if method in cinfo.methods:
                targets.append(cinfo.methods[method])
                break
        for sub in self.all_subclasses(cls_qual):
            sub_info = self.classes[sub]
            if method in sub_info.methods:
                targets.append(sub_info.methods[method])
        return targets

    def attr_type(self, cls_qual: str, attr: str) -> Optional[str]:
        for cinfo in self.mro(cls_qual):
            if attr in cinfo.attr_types:
                return cinfo.attr_types[attr]
        return None

    # ----------------------------------------------------- annotation layer
    def resolve_annotation(self, mod: ModuleInfo,
                           ann: Optional[ast.expr]) -> Optional[str]:
        """Type qualname for an annotation expression, unwrapping Optional
        and string ("forward reference") annotations."""
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Subscript):
            dotted = _dotted(ann.value)
            if dotted is not None and dotted.rpartition(".")[2] in (
                    "Optional", "Final", "ClassVar"):
                inner = ann.slice
                return self.resolve_annotation(mod, inner)
            return None
        dotted = _dotted(ann)
        if dotted is None:
            return None
        return self.resolve_class(mod, dotted)

    def _infer_attr_types(self) -> None:
        for cinfo in self.classes.values():
            mod = self.modules[cinfo.module]
            # Dataclass-style class-level annotations.
            class_node = self._class_node(cinfo)
            if class_node is not None:
                for stmt in class_node.body:
                    if isinstance(stmt, ast.AnnAssign) and \
                            isinstance(stmt.target, ast.Name):
                        t = self.resolve_annotation(mod, stmt.annotation)
                        if t is not None:
                            cinfo.attr_types.setdefault(stmt.target.id, t)
            for method in cinfo.methods.values():
                params = self._param_types(mod, method)
                for stmt in ast.walk(method.node):
                    target: Optional[ast.expr] = None
                    value: Optional[ast.expr] = None
                    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                        target, value = stmt.targets[0], stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        target = stmt.target
                        ann_t = self.resolve_annotation(mod, stmt.annotation)
                        if ann_t is not None and \
                                self._is_self_attr(target) is not None:
                            attr = self._is_self_attr(target)
                            if attr is not None:
                                cinfo.attr_types.setdefault(attr, ann_t)
                        value = stmt.value
                    if target is None or value is None:
                        continue
                    attr = self._is_self_attr(target)
                    if attr is None or attr in cinfo.attr_types:
                        continue
                    t = self._expr_type_shallow(mod, cinfo, params, value)
                    if t is not None:
                        cinfo.attr_types[attr] = t

    def _class_node(self, cinfo: ClassInfo) -> Optional[ast.ClassDef]:
        mod = self.modules[cinfo.module]
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ClassDef) and node.name == cinfo.name:
                return node
        return None

    @staticmethod
    def _is_self_attr(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self":
            return target.attr
        return None

    def _param_types(self, mod: ModuleInfo,
                     fn: FunctionInfo) -> Dict[str, str]:
        out: Dict[str, str] = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            t = self.resolve_annotation(mod, arg.annotation)
            if t is not None:
                out[arg.arg] = t
        return out

    def _expr_type_shallow(self, mod: ModuleInfo, cinfo: Optional[ClassInfo],
                           params: Dict[str, str],
                           expr: ast.expr) -> Optional[str]:
        """Type of an rvalue for attribute inference (no local tracking)."""
        if isinstance(expr, ast.IfExp):
            return (self._expr_type_shallow(mod, cinfo, params, expr.body) or
                    self._expr_type_shallow(mod, cinfo, params, expr.orelse))
        if isinstance(expr, ast.Name):
            if expr.id in params:
                return params[expr.id]
            return None
        if isinstance(expr, ast.Call):
            dotted = _dotted(expr.func)
            if dotted is None:
                return None
            cls = self.resolve_class(mod, dotted)
            if cls is not None:
                return cls
            resolved = self.resolve_name(mod, dotted)
            if resolved in self.functions:
                fn = self.functions[resolved]
                fn_mod = self.modules[fn.module]
                return self.resolve_annotation(fn_mod, fn.node.returns)
            return None
        if isinstance(expr, ast.Attribute):
            base_t = self._expr_type_shallow(mod, cinfo, params, expr.value)
            if base_t is not None:
                return self.attr_type(base_t, expr.attr)
            if isinstance(expr.value, ast.Name) and \
                    expr.value.id == "self" and cinfo is not None:
                return self.attr_type(cinfo.qualname, expr.attr)
            return None
        return None
