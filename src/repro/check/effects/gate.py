"""The effects-gate driver: suppressions, baseline, report, explanations.

``run_effects_gate`` builds the call graph, runs inference and contract
checking, then filters the findings in two layers:

1. **noqa** -- ``# repro: noqa-REPxxx`` on the finding's line (or on any
   line of the annotated def's decorator block) and file-level
   ``# repro: noqa-file-REPxxx`` markers, exactly like the determinism
   lint.
2. **baseline** -- the committed ``baseline.json`` next to this module
   grandfathers known violations by (rule, function qualname); each entry
   carries a written justification.  Baselined findings PASS the normal
   gate, FAIL under ``--strict`` (the weekly CI variant), and entries
   that no longer match anything are reported stale so the baseline can
   only shrink.

The JSON report (``--effects-report``) is a deterministic CI artifact:
summary counts, the per-function effect table, active/baselined findings
and stale baseline entries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.check.diagnostics import (
    NoqaIndex,
    parse_noqa,
    relativize_path,
    sort_findings,
)
from repro.check.effects.callgraph import CallGraph
from repro.check.effects.contracts import (
    EFFECT_RULES,
    EffectFinding,
    check_contracts,
)
from repro.check.effects.infer import EffectInfo, infer_effects

#: Long-form rule explanations for ``repro check --explain REPxxx``.
EXPLANATIONS: Dict[str, str] = {
    "REP100": """\
REP100: inferred effects exceed the @effects(...) declaration.

A function decorated @effects("DISK_CHARGE") claims its whole call
subtree does nothing but charge the simulated device.  The fixpoint
inference found additional effects (the message shows one witness call
chain per effect).  Either the declaration is stale -- extend it -- or
the function grew a side effect it must not have -- fix the callee.
Declarations are contracts, not documentation: they are what the
compaction-explorer and stability-scheduler tooling will rely on to
prove two policies are compared under identical charging rules.""",
    "REP101": """\
REP101: an @observation_only function reaches a forbidden effect.

Observation-only code (stats(), invariant walks, the sanitizer, trace
exporters, scan planning) may read anything and build its own buffers,
but must never advance the simulated clock, charge device or network
time, draw randomness, or read the host clock: observers that perturb
the run make every A/B comparison in the paper unsound.  The message
shows a witness call chain to the offending intrinsic.  Fix the callee,
take the observation out of the charged path, or -- if the charge is the
point -- remove the @observation_only contract.""",
    "REP102": """\
REP102: raw SimDisk costing call outside repro.storage.

SimDisk.fg_io / fg_stream / bg_grant / bg_count / sync_drain are the
device intrinsics; every byte and every second of simulated device time
must flow through the Runtime charging wrappers (fg_read_blocks,
bg_write_run, bg_read_run, stall_on) so write amplification, read
amplification and stall accounting stay complete.  A raw call from
engine or cluster code bypasses the metrics and the page cache.""",
    "REP103": """\
REP103: randomness that does not descend from an explicit seed.

Every RNG in the simulation must be a random.Random(seed) or
numpy default_rng(seed) instance whose seed is reachable from the
run's configuration; bare Random()/default_rng() pull OS entropy and
module-global random.* draws share one process-wide stream -- both make
two runs with the same options diverge.  Thread the seed in as a
parameter (see repro.workloads for the pattern).""",
    "REP104": """\
REP104: tracer span begin without a balancing end on every path.

Spans are begin/end pairs keyed by job id; an unmatched begin corrupts
the Chrome trace (Perfetto refuses unbalanced async events) and breaks
the span-balance invariant the obs tests assert.  Close the span on
every explicit path (including early returns), or -- when the design
opens a span in one function and closes it in another, like the
background pool's activate/retire pair -- declare the one-sided half
with @effects("SPAN_BEGIN") / @effects("SPAN_END").""",
    "REP105": """\
REP105: host wall-clock read without an @effects("HOST_TIME") contract.

The simulated clock is the only time source for results; host timers are
legitimate solely in the bench harness, where they measure *this
machine*, never the simulation.  Declaring @effects("HOST_TIME") marks
the function as harness code and keeps the effect visible to callers;
an undeclared read is almost always a bug that makes output depend on
wall-clock speed.""",
}


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered violation."""

    rule: str
    function: str
    reason: str


@dataclass
class EffectsResult:
    """Outcome of one effects-gate run."""

    #: Findings that fail the gate (not suppressed, not baselined).
    findings: List[EffectFinding] = field(default_factory=list)
    #: Findings matched by a baseline entry (fail only under --strict).
    baselined: List[Tuple[EffectFinding, BaselineEntry]] = \
        field(default_factory=list)
    #: Baseline entries that matched nothing (the debt shrank; clean up).
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    #: Per-function inferred effects (report payload).
    table: Dict[str, EffectInfo] = field(default_factory=dict)
    n_functions: int = 0
    n_edges: int = 0
    n_contracts: int = 0
    n_suppressed: int = 0
    strict: bool = False

    @property
    def ok(self) -> bool:
        if self.findings:
            return False
        return not (self.strict and self.baselined)

    def summary_line(self) -> str:
        return (f"{self.n_functions} functions, {self.n_edges} call edges, "
                f"{self.n_contracts} contracts, "
                f"{len(self.findings)} violation(s), "
                f"{len(self.baselined)} baselined")

    def to_json(self, root: Optional[Path] = None) -> Dict[str, object]:
        """Deterministic report dict (the CI artifact)."""
        def finding_dict(f: EffectFinding) -> Dict[str, object]:
            return {"rule": f.rule, "path": relativize_path(f.path, root),
                    "line": f.line, "col": f.col, "function": f.function,
                    "message": f.message}

        effects_by_fn = {
            qual: sorted(eff.inferred)
            for qual, eff in sorted(self.table.items()) if eff.inferred}
        contracts = {
            qual: {"declared": sorted(eff.fn.declared or ()),
                   "observation_only": eff.fn.obs_only}
            for qual, eff in sorted(self.table.items())
            if eff.fn.declared is not None or eff.fn.obs_only}
        return {
            "summary": {
                "functions": self.n_functions,
                "call_edges": self.n_edges,
                "contracts": self.n_contracts,
                "violations": len(self.findings),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
                "suppressed": self.n_suppressed,
                "strict": self.strict,
                "ok": self.ok,
            },
            "findings": [finding_dict(f) for f in self.findings],
            "baselined": [
                {**finding_dict(f), "reason": entry.reason}
                for f, entry in self.baselined],
            "stale_baseline": [
                {"rule": e.rule, "function": e.function, "reason": e.reason}
                for e in self.stale_baseline],
            "effects": effects_by_fn,
            "declared_contracts": contracts,
        }


def baseline_path() -> Path:
    """The committed baseline file (lives next to this module)."""
    return Path(__file__).resolve().parent / "baseline.json"


def load_baseline(path: Optional[Path] = None) -> List[BaselineEntry]:
    path = path if path is not None else baseline_path()
    if not path.is_file():
        return []
    raw = json.loads(path.read_text(encoding="utf-8"))
    return [BaselineEntry(rule=e["rule"], function=e["function"],
                          reason=e.get("reason", ""))
            for e in raw]


def default_effects_root() -> Path:
    import repro
    return Path(repro.__file__).resolve().parent


def run_effects_gate(root: Optional[Path] = None, *, strict: bool = False,
                     baseline: Optional[Path] = None) -> EffectsResult:
    """Run the whole pass over ``root`` (default: the installed repro pkg)."""
    root = root if root is not None else default_effects_root()
    graph = CallGraph.build(root)
    table = infer_effects(graph)
    raw_findings = check_contracts(graph, table)

    # Layer 1: noqa suppressions from the finding's own source file.
    noqa_cache: Dict[str, NoqaIndex] = {}
    kept: List[EffectFinding] = []
    n_suppressed = 0
    for finding in raw_findings:
        index = noqa_cache.get(finding.path)
        if index is None:
            source = Path(finding.path).read_text(encoding="utf-8")
            index = parse_noqa(source)
            noqa_cache[finding.path] = index
        if index.is_suppressed(finding.rule, finding.line,
                               finding.noqa_lines):
            n_suppressed += 1
            continue
        kept.append(finding)

    # Layer 2: the committed baseline.
    entries = load_baseline(baseline)
    by_key: Dict[Tuple[str, str], BaselineEntry] = {
        (e.rule, e.function): e for e in entries}
    matched: Dict[Tuple[str, str], bool] = {k: False for k in by_key}
    active: List[EffectFinding] = []
    baselined: List[Tuple[EffectFinding, BaselineEntry]] = []
    for finding in kept:
        key = (finding.rule, finding.function)
        entry = by_key.get(key)
        if entry is not None:
            matched[key] = True
            baselined.append((finding, entry))
        else:
            active.append(finding)
    stale = [by_key[k] for k in sorted(by_key) if not matched[k]]

    result = EffectsResult(
        findings=sort_findings(active),
        baselined=baselined,
        stale_baseline=stale,
        table=table,
        n_functions=len(table),
        n_edges=sum(len(e.callees) for e in table.values()),
        n_contracts=sum(1 for e in table.values()
                        if e.fn.declared is not None or e.fn.obs_only),
        n_suppressed=n_suppressed,
        strict=strict)
    return result


def explain(rule: str) -> Optional[str]:
    """Long-form explanation for ``repro check --explain REPxxx``."""
    if rule in EXPLANATIONS:
        return EXPLANATIONS[rule]
    return None


def write_report(result: EffectsResult, path: str,
                 root: Optional[Path] = None) -> None:
    """Write the deterministic JSON report to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_json(root), fh, indent=2, sort_keys=True)
        fh.write("\n")


__all__ = [
    "BaselineEntry",
    "EffectsResult",
    "EFFECT_RULES",
    "EXPLANATIONS",
    "baseline_path",
    "explain",
    "load_baseline",
    "run_effects_gate",
    "write_report",
]
