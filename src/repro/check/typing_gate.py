"""The mypy strict-ish typing gate (``repro check --types``).

Configuration lives in ``pyproject.toml`` (``[tool.mypy]``): the annotated
engine packages (``core``, ``table``, ``storage``, ``db``, ``memtable``,
``common``, ``check``) are checked with ``disallow_untyped_defs`` and friends.

mypy is an *optional* tool dependency: environments without it (the container
image bakes in a fixed toolchain) skip the gate with an explicit SKIP result
instead of failing, so ``python -m repro check`` stays usable everywhere while
CI -- which installs mypy -- enforces the gate.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional


@dataclass(frozen=True)
class GateResult:
    """Outcome of one typing-gate run."""

    ok: bool
    skipped: bool
    output: str

    @property
    def status(self) -> str:
        if self.skipped:
            return "SKIP"
        return "PASS" if self.ok else "FAIL"


def mypy_available() -> bool:
    return importlib.util.find_spec("mypy") is not None


def _project_root() -> Optional[Path]:
    """The checkout root (directory holding pyproject.toml), if any."""
    import repro
    for parent in Path(repro.__file__).resolve().parents:
        if (parent / "pyproject.toml").is_file():
            return parent
    return None


def run_typing_gate(extra_args: Optional[List[str]] = None) -> GateResult:
    """Run mypy with the repo's pyproject config; SKIP when unavailable."""
    if not mypy_available():
        return GateResult(ok=True, skipped=True,
                          output="mypy is not installed; typing gate skipped "
                                 "(pip install mypy to enable)")
    root = _project_root()
    if root is None:
        return GateResult(ok=True, skipped=True,
                          output="pyproject.toml not found; typing gate skipped")
    cmd = [sys.executable, "-m", "mypy", "--config-file",
           str(root / "pyproject.toml")]
    cmd.extend(extra_args or [])
    proc = subprocess.run(cmd, cwd=str(root), capture_output=True, text=True)
    output = (proc.stdout + proc.stderr).strip()
    return GateResult(ok=proc.returncode == 0, skipped=False, output=output)
