"""Structured diagnostics for invariant violations.

Every structural check in the engine -- the ad-hoc guards in
:mod:`repro.memtable.memtable` and :mod:`repro.storage.simdisk` as well as the
sanitizer's full catalog -- raises through :func:`invariant_error`, so all
violation messages share one format::

    [check-id] human message | key1=value1 key2=value2

The attached :class:`Diagnostic` keeps the pieces machine-readable: the check
id names the invariant (stable, greppable), the context dict carries the
offending values.  This module must stay dependency-light (engine modules
import it), so it only imports :mod:`repro.common.errors`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from repro.common.errors import InvariantViolation


@dataclass(frozen=True)
class Diagnostic:
    """One structural-invariant violation, machine-readable."""

    #: Stable id of the violated invariant, e.g. ``"level-disjoint"``.
    check: str
    #: Human-readable description of what went wrong.
    message: str
    #: Offending values (node ranges, sequence counts, clock readings...).
    context: Mapping[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        text = f"[{self.check}] {self.message}"
        if self.context:
            pairs = " ".join(f"{k}={v!r}" for k, v in self.context.items())
            text = f"{text} | {pairs}"
        return text


def invariant_error(check: str, message: str, **context: Any) -> InvariantViolation:
    """Build an :class:`InvariantViolation` carrying a :class:`Diagnostic`.

    The exception's string form is the formatted diagnostic; the structured
    form is available as ``exc.diagnostic``.  Usage::

        raise invariant_error("clock-monotonic", "clock cannot go backwards",
                              dt=dt)
    """
    diag = Diagnostic(check=check, message=message, context=dict(context))
    exc = InvariantViolation(diag.format())
    exc.diagnostic = diag
    return exc


def diagnostic_of(exc: BaseException) -> Diagnostic:
    """The structured diagnostic of an exception, synthesizing one if absent."""
    diag = getattr(exc, "diagnostic", None)
    if isinstance(diag, Diagnostic):
        return diag
    return Diagnostic(check="unstructured", message=str(exc))


def format_violations(diagnostics: "list[Diagnostic]") -> str:
    """Render a list of diagnostics, one per line, for reports and tests."""
    return "\n".join(d.format() for d in diagnostics)
