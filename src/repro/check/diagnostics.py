"""Structured diagnostics for invariant violations.

Every structural check in the engine -- the ad-hoc guards in
:mod:`repro.memtable.memtable` and :mod:`repro.storage.simdisk` as well as the
sanitizer's full catalog -- raises through :func:`invariant_error`, so all
violation messages share one format::

    [check-id] human message | key1=value1 key2=value2

The attached :class:`Diagnostic` keeps the pieces machine-readable: the check
id names the invariant (stable, greppable), the context dict carries the
offending values.  This module must stay dependency-light (engine modules
import it), so it only imports :mod:`repro.common.errors`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple, TypeVar

from repro.common.errors import InvariantViolation


@dataclass(frozen=True)
class Diagnostic:
    """One structural-invariant violation, machine-readable."""

    #: Stable id of the violated invariant, e.g. ``"level-disjoint"``.
    check: str
    #: Human-readable description of what went wrong.
    message: str
    #: Offending values (node ranges, sequence counts, clock readings...).
    context: Mapping[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        text = f"[{self.check}] {self.message}"
        if self.context:
            pairs = " ".join(f"{k}={v!r}" for k, v in self.context.items())
            text = f"{text} | {pairs}"
        return text


def invariant_error(check: str, message: str, **context: Any) -> InvariantViolation:
    """Build an :class:`InvariantViolation` carrying a :class:`Diagnostic`.

    The exception's string form is the formatted diagnostic; the structured
    form is available as ``exc.diagnostic``.  Usage::

        raise invariant_error("clock-monotonic", "clock cannot go backwards",
                              dt=dt)
    """
    diag = Diagnostic(check=check, message=message, context=dict(context))
    exc = InvariantViolation(diag.format())
    exc.diagnostic = diag
    return exc


def diagnostic_of(exc: BaseException) -> Diagnostic:
    """The structured diagnostic of an exception, synthesizing one if absent."""
    diag = getattr(exc, "diagnostic", None)
    if isinstance(diag, Diagnostic):
        return diag
    return Diagnostic(check="unstructured", message=str(exc))


def format_violations(diagnostics: "list[Diagnostic]") -> str:
    """Render a list of diagnostics, one per line, for reports and tests."""
    return "\n".join(d.format() for d in diagnostics)


# --------------------------------------------------------------------------
# Shared static-check plumbing: suppression comments, path relativization
# and deterministic ordering.  Both the determinism lint (REP0xx) and the
# effects gate (REP1xx) speak this dialect, so one test suite covers the
# round-trip for both.
# --------------------------------------------------------------------------

#: Per-line suppression: ``# repro: noqa-REPxxx`` (one rule per marker;
#: repeat the marker to suppress several rules on one line).
NOQA_LINE_RE = re.compile(r"#\s*repro:\s*noqa-(REP\d{3})")
#: File-level suppression: ``# repro: noqa-file-REPxxx`` anywhere in the
#: file (conventionally in the module docstring header) silences the rule
#: for the whole file.
NOQA_FILE_RE = re.compile(r"#\s*repro:\s*noqa-file-(REP\d{3})")


@dataclass(frozen=True)
class NoqaIndex:
    """Parsed suppression markers of one source file."""

    #: line number -> rule ids suppressed on that line.
    lines: Mapping[int, Set[str]]
    #: Rule ids suppressed for the entire file.
    file_rules: Set[str]

    def is_suppressed(self, rule: str, line: int,
                      extra_lines: Iterable[int] = ()) -> bool:
        """Whether ``rule`` is suppressed at ``line``.

        ``extra_lines`` widens the match window -- a finding anchored at a
        decorated ``def`` accepts a marker on any line of the decorator
        block, so suppression is insensitive to which physical line the
        AST anchors the finding to.
        """
        if rule in self.file_rules:
            return True
        if rule in self.lines.get(line, ()):
            return True
        return any(rule in self.lines.get(extra, ())
                   for extra in extra_lines)


def parse_noqa(source: str) -> NoqaIndex:
    """Parse all suppression markers out of one module's source text."""
    lines: Dict[int, Set[str]] = {}
    file_rules: Set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        for match in NOQA_FILE_RE.finditer(text):
            file_rules.add(match.group(1))
        # Strip file-level markers before per-line matching so the
        # narrower regex cannot double-count them.
        stripped = NOQA_FILE_RE.sub("", text)
        for match in NOQA_LINE_RE.finditer(stripped):
            lines.setdefault(lineno, set()).add(match.group(1))
    return NoqaIndex(lines=lines, file_rules=file_rules)


def relativize_path(path: str, root: Optional[Path] = None) -> str:
    """Render ``path`` relative to ``root`` (default: cwd) when possible.

    Findings carry absolute paths internally (stable sort keys across
    working directories); reports print them relative so CI artifacts and
    local runs are comparable byte-for-byte.
    """
    base = root if root is not None else Path.cwd()
    try:
        return str(Path(path).resolve().relative_to(base.resolve()))
    except ValueError:
        return str(path)


_FindingT = TypeVar("_FindingT")


def finding_sort_key(finding: Any) -> Tuple[str, int, int, str]:
    """Deterministic ordering shared by every REP-rule reporter."""
    return (str(finding.path), int(finding.line), int(finding.col),
            str(finding.rule))


def sort_findings(findings: Iterable[_FindingT]) -> List[_FindingT]:
    """Sort findings by (path, line, col, rule) -- the report order."""
    return sorted(findings, key=finding_sort_key)
