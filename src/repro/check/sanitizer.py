"""Runtime structural sanitizer for the LSA/IAM engine (opt-in debug layer).

When enabled (``IamDB(..., sanitizer_options=SanitizerOptions())`` or the
``--sanitize`` CLI flag), the sanitizer walks the live tree after every
structural operation -- flush, split, combine, merge -- and the DB state at
every memtable rotation, verifying the invariant catalog the paper's analysis
rests on:

==========================  ===========================================
``level-sorted``            node ranges per level are sorted & disjoint
``range-covers-data``       every node's range covers its table's keys
``sequence-sorted``         every sequence is (key asc, seq desc) sorted
``sequence-layout``         sequences occupy disjoint, increasing blocks
``mixed-level-bound``       ``Lm`` nodes never *grow* past ``k`` sequences
                            (move-down carry heals on first arrival, §5.1)
``leaf-is-last``            no nodes beyond the leaf level
``node-file-agreement``     node bytes == live SimFile bytes (manifest view)
``clock-monotonic``         the simulated clock never goes backwards
``space-accounting``        disk live_bytes == sum of live file bytes
``cache-pin-balance``       pinned blocks are resident and belong to live
                            files; per-file residency partitions the LRU
``wal-memtable-agreement``  WAL content == memtable + immutable records
``manifest-agreement``      checkpoint seq <= DB seq; WAL holds only
                            records newer than the checkpoint
==========================  ===========================================

The sanitizer is strictly *observation-only*: it never touches the page
cache's LRU order, never charges I/O, and never advances the clock, so a
sanitized run produces byte-identical write amplification and tree shape to
an unsanitized one (enforced by ``tests/test_sanitizer_equivalence.py``).

Violations raise :class:`InvariantViolation` with a structured
:class:`~repro.check.diagnostics.Diagnostic` (or are collected when
``halt_on_violation=False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.check.diagnostics import Diagnostic, invariant_error
from repro.common.records import KEY, SEQ, RecordTuple, is_sorted_run
from repro.check.effects.registry import observation_only

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.lsa import LsaTree
    from repro.db.iamdb import IamDB


@dataclass(frozen=True)
class SanitizerOptions:
    """Configuration of the runtime sanitizer (all checks default on)."""

    #: Verify record-level sortedness of every sequence (O(data) per walk).
    deep_records: bool = True
    #: Verify page-cache pin/residency balance.
    check_cache: bool = True
    #: Verify WAL <-> memtable agreement at DB checkpoints.
    check_wal: bool = True
    #: Walk the tree every Nth structural event (1 = every event).
    check_every: int = 1
    #: Raise on the first violation (False: collect into ``violations``).
    halt_on_violation: bool = True


#: Process-wide default used when a DB is built without explicit options
#: (set by the ``--sanitize`` CLI flag, see :func:`set_default_options`).
_DEFAULT_OPTIONS: Optional[SanitizerOptions] = None


def set_default_options(options: Optional[SanitizerOptions]) -> None:
    """Install process-wide default sanitizer options (``--sanitize``)."""
    global _DEFAULT_OPTIONS
    _DEFAULT_OPTIONS = options


def default_options() -> Optional[SanitizerOptions]:
    return _DEFAULT_OPTIONS


@dataclass
class _SeenNode:
    """Per-node observation from the previous walk (mixed-bound tracking)."""

    node: Any  # strong ref: keeps id() stable between walks
    level: int
    n_sequences: int


class Sanitizer:
    """Walks live engine/DB state and verifies structural invariants."""

    def __init__(self, db: "IamDB", options: Optional[SanitizerOptions] = None) -> None:
        self.db = db
        self.options = options if options is not None else SanitizerOptions()
        self.events_seen = 0
        self.checks_run = 0
        self.violations: List[Diagnostic] = []
        self._last_clock = 0.0
        self._last_mk: Optional[Tuple[int, int]] = None
        self._seen: Dict[int, _SeenNode] = {}

    # ------------------------------------------------------------- reporting
    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def _fail(self, check: str, message: str, **context: Any) -> None:
        exc = invariant_error(check, message, **context)
        self.violations.append(exc.diagnostic)
        if self.options.halt_on_violation:
            raise exc

    # ----------------------------------------------------------- entry points
    @observation_only
    def after_structural_event(self, engine: "LsaTree", event: str) -> None:
        """Engine hook: called after every flush/split/combine/merge."""
        self.events_seen += 1
        if self.events_seen % max(1, self.options.check_every) != 0:
            return
        self.check_tree(engine, event=event)

    @observation_only
    def check_tree(self, engine: "LsaTree", *, event: str = "explicit") -> None:
        """Walk the live tree and storage state; verify every invariant."""
        self.checks_run += 1
        self._check_clock()
        # The level walk reads LSA-shaped structure (per-level nodes with
        # ranges); LeveledLsm also has ``levels`` but of bare MSTables, so
        # gate on ``n`` too (recovery calls this for every engine).
        if hasattr(engine, "levels") and hasattr(engine, "n"):
            self._check_levels(engine, event)
            self._check_policy_bounds(engine, event)
        self._check_space_accounting()
        if self.options.check_cache:
            self._check_cache()

    @observation_only
    def check_db(self, event: str = "rotation") -> None:
        """DB hook: verify WAL/memtable/manifest agreement.

        Only sound at DB-level quiescent points (rotation boundaries, after
        an explicit flush, after recovery) -- mid-flush the flushing records
        are owned by the background job and absent from both sides.
        """
        self.checks_run += 1
        self._check_clock()
        if self.options.check_wal:
            self._check_wal_memtable(event)
        self._check_manifest(event)

    # ------------------------------------------------------------- tree walk
    def _check_levels(self, engine: "LsaTree", event: str) -> None:
        opts = self.options
        for level_no in range(1, engine.n + 1):
            level = engine.levels[level_no]
            for a, b in zip(level, level[1:]):
                if not a.range_hi < b.range_lo:
                    self._fail("level-sorted",
                               "node ranges overlap or are unsorted",
                               event=event, level=level_no, left=repr(a),
                               right=repr(b))
            for node in level:
                self._check_node(node, level_no, event, deep=opts.deep_records)
        for extra_no in range(engine.n + 1, len(engine.levels)):
            if engine.levels[extra_no]:
                self._fail("leaf-is-last", "nodes exist beyond the leaf level",
                           event=event, leaf=engine.n, level=extra_no,
                           nodes=len(engine.levels[extra_no]))

    def _check_node(self, node: Any, level_no: int, event: str, *, deep: bool) -> None:
        if node.is_empty:
            return
        table = node.table
        if not (node.range_lo <= table.min_key and table.max_key <= node.range_hi):
            self._fail("range-covers-data", "node range does not cover its data",
                       event=event, level=level_no,
                       range=(node.range_lo, node.range_hi),
                       data=(table.min_key, table.max_key))
        self._check_table_file(table, level_no, event)
        prev_end = -1
        for seq in table.sequences:
            if seq.first_block < prev_end:
                self._fail("sequence-layout",
                           "sequence blocks overlap an earlier sequence",
                           event=event, level=level_no, file=table.file_id,
                           first_block=seq.first_block, prev_end=prev_end)
            prev_end = seq.first_block + seq.n_blocks
            if deep:
                self._check_sequence(seq, level_no, event, table.file_id)

    def _check_sequence(self, seq: Any, level_no: int, event: str, file_id: int) -> None:
        records: List[RecordTuple] = seq.records
        if not records:
            self._fail("sequence-sorted", "empty sequence", event=event,
                       level=level_no, file=file_id)
            return
        if not is_sorted_run(records):
            self._fail("sequence-sorted",
                       "sequence is not (key asc, seq desc) sorted",
                       event=event, level=level_no, file=file_id,
                       n_records=len(records))
        if records[0][KEY] != seq.min_key or records[-1][KEY] != seq.max_key:
            self._fail("sequence-sorted",
                       "sequence min/max keys disagree with its records",
                       event=event, level=level_no, file=file_id,
                       min_key=seq.min_key, max_key=seq.max_key)

    def _check_table_file(self, table: Any, level_no: int, event: str) -> None:
        disk = self.db.runtime.disk
        file = table.file
        if file.deleted or file.file_id not in disk.files:
            self._fail("node-file-agreement",
                       "live node references a deleted file",
                       event=event, level=level_no, file=file.file_id)
            return
        expected = table.data_bytes + table.metadata_bytes
        if file.nbytes != expected:
            self._fail("node-file-agreement",
                       "file byte accounting disagrees with table contents",
                       event=event, level=level_no, file=file.file_id,
                       file_bytes=file.nbytes, table_bytes=expected)

    # ----------------------------------------------------------- policy bound
    def _check_policy_bounds(self, engine: "LsaTree", event: str) -> None:
        """The mixed level ``Lm`` never *grows* past ``k`` sequences (§5).

        Metadata-only move-downs may carry an over-bound node *into* a
        mixed/merging level (the policy merges it on its first arrival, see
        ``IamTree.policy_debt``), so the bound is enforced on transitions: a
        node observed under-bound at its level must never be observed
        over-bound at the same level, and an over-bound node must never gain
        sequences while staying at its level.
        """
        m = getattr(engine, "m", None)
        k = getattr(engine, "k", None)
        if m is None or k is None:
            self._seen = {}
            self._last_mk = None
            return
        if self._last_mk != (m, k):
            # Retuning reclassifies levels; restart the transition tracking.
            self._seen = {}
            self._last_mk = (m, k)
        seen_now: Dict[int, _SeenNode] = {}
        for level_no in range(1, engine.n + 1):
            bound: Optional[int] = None
            if level_no > m:
                bound = 1
            elif level_no == m:
                bound = k
            for node in engine.levels[level_no]:
                n_seq = node.n_sequences
                if bound is not None and n_seq > bound:
                    prev = self._seen.get(id(node))
                    if prev is not None and prev.node is node and \
                            prev.level == level_no:
                        if prev.n_sequences <= bound:
                            self._fail(
                                "mixed-level-bound",
                                "node exceeded its level's sequence bound "
                                "without a move-down",
                                event=event, level=level_no, m=m, k=k,
                                bound=bound, n_sequences=n_seq,
                                was=prev.n_sequences)
                        elif n_seq > prev.n_sequences:
                            self._fail(
                                "mixed-level-bound",
                                "over-bound node gained sequences instead of "
                                "merging on arrival",
                                event=event, level=level_no, m=m, k=k,
                                bound=bound, n_sequences=n_seq,
                                was=prev.n_sequences)
                seen_now[id(node)] = _SeenNode(node, level_no, n_seq)
        self._seen = seen_now

    # -------------------------------------------------------- storage checks
    def _check_clock(self) -> None:
        now = self.db.runtime.clock.now
        if now < self._last_clock:
            self._fail("clock-monotonic", "simulated clock went backwards",
                       now=now, last=self._last_clock)
        self._last_clock = now

    def _check_space_accounting(self) -> None:
        disk = self.db.runtime.disk
        total = sum(f.nbytes for f in disk.files.values())
        if total != disk.live_bytes:
            self._fail("space-accounting",
                       "disk live_bytes disagrees with per-file bytes",
                       live_bytes=disk.live_bytes, file_sum=total)

    def _check_cache(self) -> None:
        cache = self.db.runtime.cache
        disk = self.db.runtime.disk
        lru_keys = set(cache._lru)
        for key in cache._pinned:
            if key not in lru_keys:
                self._fail("cache-pin-balance", "pinned block is not resident",
                           file=key[0], block=key[1])
            if key[0] not in disk.files:
                self._fail("cache-pin-balance",
                           "pinned block belongs to a deleted file",
                           file=key[0], block=key[1])
        per_file_keys = {(fid, b) for fid, blocks in cache._per_file.items()
                         for b in blocks}
        if per_file_keys != lru_keys:
            extra = len(per_file_keys - lru_keys)
            missing = len(lru_keys - per_file_keys)
            self._fail("cache-pin-balance",
                       "per-file residency sets disagree with the LRU",
                       extra_in_per_file=extra, missing_from_per_file=missing)

    # ------------------------------------------------------------- db checks
    @staticmethod
    def _memtable_entries(memtable: Any) -> List[Tuple[Any, int]]:
        out: List[Tuple[Any, int]] = []
        for key, versions in memtable._versions.items():
            for seq, _kind, _value in versions:
                out.append((key, seq))
        return out

    def _check_wal_memtable(self, event: str) -> None:
        db = self.db
        wal_entries = sorted((rec[KEY], rec[SEQ]) for rec in db.wal._records)
        mem_entries = self._memtable_entries(db.memtable)
        if db.immutable is not None:
            mem_entries.extend(self._memtable_entries(db.immutable))
        mem_entries.sort()
        if wal_entries != mem_entries:
            self._fail("wal-memtable-agreement",
                       "WAL content disagrees with memtable + immutable "
                       "(replay would not rebuild the volatile state)",
                       event=event, wal_records=len(wal_entries),
                       memtable_records=len(mem_entries))

    def _check_manifest(self, event: str) -> None:
        db = self.db
        state = db.manifest.restore()
        if state is None:
            return
        checkpoint_seq = state.get("seq", 0) if isinstance(state, dict) else 0
        if checkpoint_seq > db._seq:
            self._fail("manifest-agreement",
                       "manifest checkpoint is newer than the DB sequence",
                       event=event, checkpoint_seq=checkpoint_seq,
                       db_seq=db._seq)
        for rec in db.wal._records:
            if rec[SEQ] <= checkpoint_seq:
                self._fail("manifest-agreement",
                           "WAL retains a record already covered by the "
                           "manifest checkpoint",
                           event=event, record_seq=rec[SEQ],
                           checkpoint_seq=checkpoint_seq)
                break

    # --------------------------------------------------------------- summary
    @observation_only
    def summary(self) -> Dict[str, int]:
        return {
            "events_seen": self.events_seen,
            "checks_run": self.checks_run,
            "violations": self.violation_count,
        }
