"""IamDB: the persistent, MVCC, crash-recoverable key-value store (§6).

One wrapper owns the pieces every engine shares -- WAL, memtable, snapshots,
the manifest -- and delegates the on-disk structure to a pluggable engine:

======== ===================================== ==========================
name     engine                                paper system
======== ===================================== ==========================
iam      :class:`repro.core.iam.IamTree`       IAM-tree (I-nt)
lsa      :class:`repro.core.lsa.LsaTree`       LSA-tree (A-nt)
leveldb  :class:`repro.lsm.leveled.LeveledLsm` LevelDB (L)
rocksdb  :class:`repro.lsm.leveled.LeveledLsm` RocksDB (R-nt)
flsm     :class:`repro.lsm.flsm.FlsmEngine`    FLSM/PebblesDB (§6.8)
======== ===================================== ==========================

Write path (§5.2, identical to LevelDB): append to the WAL, insert into the
memtable; on overflow the memtable rotates and a background flush hands it to
the engine.  Rotation stalls while the previous flush is still in flight --
one of the two stall sources the tail-latency experiments measure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.common.errors import ConfigError, StoreClosedError
from repro.common.options import (
    FaultOptions,
    IamOptions,
    LsaOptions,
    LsmOptions,
    StorageOptions,
)
from repro.common.records import (
    KIND,
    DELETE,
    Key,
    RecordTuple,
    SEQ,
    VALUE,
    Value,
    encoded_size,
    make_delete,
    make_put,
)
from repro.core.engine import EngineBase
from repro.core.iam import IamTree
from repro.core.lsa import LsaTree
from repro.db.iterator import DbIterator, merge_visible
from repro.table.scan import list_stream, merge_scan
from repro.table.scanplan import planned_scan
from repro.db.snapshot import Snapshot
from repro.faults.crash import CrashSpec, RecoveryReport
from repro.lsm.flsm import FlsmEngine
from repro.lsm.leveled import LeveledLsm
from repro.memtable import Memtable
from repro.metrics import MetricsRegistry
from repro.storage.manifest import Manifest
from repro.storage.runtime import Runtime
from repro.storage.wal import WriteAheadLog
from repro.check.effects.registry import observation_only

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.sanitizer import Sanitizer, SanitizerOptions
    from repro.db.batch import WriteBatch
    from repro.storage.simdisk import SimClock

SnapshotLike = Union[None, int, Snapshot]


def _engine_factory(name: str, engine_options: Any,
                    runtime: Runtime) -> EngineBase:
    if name == "iam":
        return IamTree(engine_options or IamOptions(), runtime)
    if name == "lsa":
        # LSA is IAM's degenerate pure-append configuration (§7: "LSA is a
        # special case of IAM with minimum merges").
        opts = engine_options
        if opts is None:
            opts = IamOptions()
        if isinstance(opts, IamOptions):
            opts = opts.as_lsa()
        elif isinstance(opts, LsaOptions):
            import dataclasses
            opts = IamOptions(**dataclasses.asdict(opts)).as_lsa()
        else:
            raise ConfigError("lsa engine needs LsaOptions/IamOptions")
        engine = IamTree(opts, runtime)
        engine.name = "lsa"
        return engine
    if name == "leveldb":
        return LeveledLsm(engine_options or LsmOptions.leveldb(), runtime)
    if name == "rocksdb":
        return LeveledLsm(engine_options or LsmOptions.rocksdb(), runtime)
    if name == "flsm":
        return FlsmEngine(engine_options or LsmOptions.leveldb(), runtime)
    if name == "lsmtrie":
        from repro.lsm.lsmtrie import LsmTrieEngine
        opts = engine_options or LsaOptions()
        return LsmTrieEngine(opts, runtime)
    raise ConfigError(f"unknown engine {name!r}")


class IamDB:
    """Key-value store over a simulated storage stack."""

    def __init__(self, engine: str = "iam", *,
                 engine_options: Any = None,
                 storage_options: Optional[StorageOptions] = None,
                 sanitizer_options: Optional["SanitizerOptions"] = None,
                 fault_options: Optional[FaultOptions] = None,
                 clock: Optional["SimClock"] = None) -> None:
        self.metrics = MetricsRegistry()
        threads = getattr(engine_options, "background_threads", None)
        if threads is None:
            threads = 1
        self.runtime = Runtime(storage_options, background_threads=threads,
                               metrics=self.metrics, clock=clock)
        if fault_options is not None and fault_options.enabled:
            self.runtime.attach_faults(fault_options)
        self.engine = _engine_factory(engine, engine_options, self.runtime)
        self.engine.snapshots_provider = self._live_snapshots
        self.key_size = self.engine.options.key_size
        self.wal = WriteAheadLog(self.runtime, self.key_size)
        self.manifest = Manifest(self.runtime)
        self.memtable = Memtable(self.key_size)
        self.immutable: Optional[Memtable] = None
        self._imm_job = None
        self._seq = 0
        self._snapshots: Dict[int, int] = {}
        self._closed = False
        self.sanitizer: Optional["Sanitizer"] = None
        if sanitizer_options is None:
            from repro.check.sanitizer import default_options
            sanitizer_options = default_options()
        if sanitizer_options is not None:
            from repro.check.sanitizer import Sanitizer
            self.sanitizer = Sanitizer(self, sanitizer_options)
            self.engine.sanitizer = self.sanitizer

    @classmethod
    def create(cls, engine: str = "iam", **kw: Any) -> "IamDB":
        """Convenience constructor: ``IamDB.create("lsa", ...)``."""
        return cls(engine, **kw)

    # -------------------------------------------------------------- lifecycle
    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("operation on a closed IamDB")

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self.runtime.quiesce()
            self._closed = True

    @property
    def clock_now(self) -> float:
        return self.runtime.clock.now

    # ----------------------------------------------------------------- writes
    def put(self, key: Key, value: Value) -> None:
        """Insert/overwrite ``key``.  ``value``: bytes, or int = synthetic size."""
        self._check_open()
        self._seq += 1
        self._write(make_put(key, self._seq, value))

    def delete(self, key: Key) -> None:
        """Delete ``key`` (writes a tombstone; space reclaimed by merges)."""
        self._check_open()
        self._seq += 1
        self._write(make_delete(key, self._seq))

    def write_batch(self) -> "WriteBatch":
        """An atomic :class:`~repro.db.batch.WriteBatch` bound to this DB."""
        self._check_open()
        from repro.db.batch import WriteBatch
        return WriteBatch(self)

    def _apply_batch(self, ops: List[Tuple[str, Key, Value]]) -> None:
        """Commit a WriteBatch: consecutive seqs, one WAL run, all-or-nothing."""
        from repro.db.batch import PUT_OP
        self._check_open()
        runtime = self.runtime
        t0 = runtime.clock.now
        recs = []
        for op, key, value in ops:
            self._seq += 1
            if op == PUT_OP:
                recs.append(make_put(key, self._seq, value))
            else:
                recs.append(make_delete(key, self._seq))
        total = sum(encoded_size(r, self.key_size) for r in recs)
        self.engine.write_gate(total)
        self.wal.append_many(recs)
        self._crash_point("post-wal-append")
        self.memtable.add_many(recs)
        self.metrics.add_user_bytes(total)
        if self.memtable.nbytes >= self.engine.memtable_capacity:
            self._rotate_memtable()
        runtime.pump()
        elapsed = runtime.clock.now - t0
        self.metrics.record_latency("insert", elapsed)
        if self.metrics.hist_enabled:
            self.metrics.observe("put", elapsed)

    def iterate(self, lo_key: Optional[Key] = None,
                hi_key: Optional[Key] = None, *,
                snapshot: SnapshotLike = None) -> Iterator[Tuple[Key, object]]:
        """Lazy ordered iterator over ``(key, value)`` pairs, lo <= key < hi.

        Unlike :meth:`scan`, results stream as they are consumed -- I/O is
        charged with read-ahead while you iterate.  The view is fixed at call
        time (plus the given snapshot); interleaving writes with iteration is
        not supported.
        """
        self._check_open()
        snap = self._snap_seq(snapshot)
        streams: List = [list(self.memtable.iter_range(lo_key, hi_key))]
        if self.immutable is not None:
            streams.append(list(self.immutable.iter_range(lo_key, hi_key)))
        streams.extend(self.engine.scan_cursors(lo_key, hi_key))
        return merge_visible(streams, snapshot=snap, hi_key=hi_key)

    def _write(self, rec: RecordTuple) -> None:
        runtime = self.runtime
        t0 = runtime.clock.now
        nbytes = encoded_size(rec, self.key_size)
        self.engine.write_gate(nbytes)
        self.wal.append(rec)
        self._crash_point("post-wal-append")
        self.memtable.add(rec)
        self.metrics.add_user_bytes(nbytes)
        if self.memtable.nbytes >= self.engine.memtable_capacity:
            self._rotate_memtable()
        runtime.pump()
        elapsed = runtime.clock.now - t0
        self.metrics.record_latency("insert", elapsed)
        if self.metrics.hist_enabled:
            self.metrics.observe("put", elapsed)

    @observation_only
    def _sanitize_db(self, event: str) -> None:
        """Run the DB-level sanitizer checks at a quiescent point."""
        if self.sanitizer is not None:
            self.sanitizer.check_db(event)

    def _crash_point(self, site: str) -> None:
        """Crash-site hook (no-op unless a CrashPoints scheduler is armed)."""
        cp = self.runtime.crash_points
        if cp is not None:
            cp.reached(site)

    def _rotate_memtable(self) -> None:
        self._sanitize_db("rotation")
        if self._imm_job is not None and not self._imm_job.done:
            # The previous flush is still in flight: the write stalls (§6.2).
            self.runtime.stall_on(self._imm_job, "memtable-rotation")
        imm = self.memtable
        if len(imm) == 0:
            return
        if self.runtime.tracer.enabled:
            self.runtime.tracer.instant("db", "memtable-rotation",
                                        nbytes=imm.nbytes, records=len(imm))
        self.memtable = Memtable(self.key_size)
        records = imm.sorted_records()
        flushed_through = imm.max_seq
        job = self.engine.submit_flush(records, imm.nbytes)
        self.immutable = imm
        self._imm_job = job

        prev_done = job.on_complete

        def on_done() -> None:
            if prev_done is not None:
                prev_done()
            if self._imm_job is job:
                self.immutable = None
                self._imm_job = None
            # Checkpoint strictly BEFORE truncating the log.  The reverse
            # order has a crash window where the flushed records' only
            # durable copy (the WAL prefix) is gone while the manifest still
            # points at the pre-flush structure -- acked writes would
            # vanish.  A crash between the two steps here merely leaves
            # covered records in the log; recovery drops them.
            self._crash_point("pre-checkpoint")
            self.manifest.checkpoint({
                "engine": self.engine.checkpoint_state(),
                "seq": flushed_through,
            })
            self.manifest.edits += 1
            self._crash_point("post-checkpoint")
            self.wal.truncate_through(flushed_through)

        if job.done:
            on_done()
        else:
            job.on_complete = on_done
        self._crash_point("post-rotate")

    def flush(self) -> float:
        """Flush the memtable and wait for the flush to hit the structure."""
        self._check_open()
        t0 = self.runtime.clock.now
        if len(self.memtable):
            self._rotate_memtable()
        if self._imm_job is not None and not self._imm_job.done:
            self.runtime.stall_on(self._imm_job, "explicit-flush")
        self._sanitize_db("flush-end")
        return self.runtime.clock.now - t0

    def quiesce(self) -> float:
        """Flush and finish *all* background work (end of the tuning phase)."""
        elapsed = self.flush()
        return elapsed + self.runtime.quiesce()

    # ------------------------------------------------------------------ reads
    @staticmethod
    def _snap_seq(snapshot: SnapshotLike) -> Optional[int]:
        if snapshot is None:
            return None
        if isinstance(snapshot, Snapshot):
            return snapshot.seq
        return int(snapshot)

    def get(self, key: Key, snapshot: SnapshotLike = None) -> Optional[Value]:
        """Newest visible value of ``key``, or None."""
        self._check_open()
        runtime = self.runtime
        t0 = runtime.clock.now
        snap = self._snap_seq(snapshot)
        rec = self.memtable.get(key, snap)
        if rec is None and self.immutable is not None:
            rec = self.immutable.get(key, snap)
        if rec is None:
            rec, _ = self.engine.get(key, snap)
        runtime.pump()
        elapsed = runtime.clock.now - t0
        self.metrics.record_latency("read", elapsed)
        if self.metrics.hist_enabled:
            self.metrics.observe("get", elapsed)
        if rec is None or rec[KIND] == DELETE:
            return None
        return rec[VALUE]

    def multi_get(self, keys: List[Key],
                  snapshot: SnapshotLike = None) -> List[Optional[Value]]:
        """Batched :meth:`get`: newest visible values, in request order.

        Result- and charge-identical to calling :meth:`get` per key (see
        :func:`repro.bench.reference.reference_multi_get` for the frozen
        scalar oracle): keys the memtables resolve cost no simulated time,
        the rest go to the engine's vectorized planner, which replays the
        scalar walk's device charges key by key.  One pump and one ``read``
        latency sample per key, in request order.
        """
        self._check_open()
        runtime = self.runtime
        snap = self._snap_seq(snapshot)
        n = len(keys)
        results: List[Optional[RecordTuple]] = [None] * n
        latencies = [0.0] * n
        pending: List[int] = []
        pending_keys: List[Key] = []
        for i, key in enumerate(keys):
            rec = self.memtable.get(key, snap)
            if rec is None and self.immutable is not None:
                rec = self.immutable.get(key, snap)
            if rec is None:
                pending.append(i)
                pending_keys.append(key)
            else:
                results[i] = rec
        if pending:
            recs, lats = self.engine.multi_get(pending_keys, snap)
            for j, i in enumerate(pending):
                results[i] = recs[j]
                latencies[i] = lats[j]
        runtime.pump()
        record = self.metrics.record_latency
        hist_on = self.metrics.hist_enabled
        out: List[Optional[Value]] = []
        for i in range(n):
            record("read", latencies[i])
            if hist_on:
                self.metrics.observe("multi_get", latencies[i])
            rec = results[i]
            out.append(None if rec is None or rec[KIND] == DELETE else rec[VALUE])
        return out

    def scan(self, lo_key: Optional[Key] = None,
             hi_key: Optional[Key] = None, *, limit: Optional[int] = None,
             snapshot: SnapshotLike = None) -> List[Tuple[Key, object]]:
        """Ordered ``(key, value)`` pairs with lo <= key < hi (both optional)."""
        self._check_open()
        runtime = self.runtime
        t0 = runtime.clock.now
        snap = self._snap_seq(snapshot)
        plan = self.engine.scan_plan(lo_key, hi_key)
        if plan is not None:
            # Batched assembler: same records, same charge order as the
            # heap-merge path below, without the per-record generator dance.
            streams = [list_stream(list(self.memtable.iter_range(lo_key, hi_key)))]
            if self.immutable is not None:
                streams.append(list_stream(
                    list(self.immutable.iter_range(lo_key, hi_key))))
            streams.extend(plan)
            # Fast path: plan the whole merge vectorized (one lexsort over
            # the cached key columns + an explicit charge-event replay);
            # falls back to the pull-based mirror on unsupported shapes.
            out = planned_scan(streams, snapshot=snap, hi_key=hi_key,
                               limit=limit)
            if out is None:
                out = merge_scan(streams, snapshot=snap, hi_key=hi_key,
                                 limit=limit)
        else:
            streams: List = [list(self.memtable.iter_range(lo_key, hi_key))]
            if self.immutable is not None:
                streams.append(list(self.immutable.iter_range(lo_key, hi_key)))
            streams.extend(self.engine.scan_cursors(lo_key, hi_key))
            out = list(merge_visible(streams, snapshot=snap, hi_key=hi_key,
                                     limit=limit))
        runtime.pump()
        elapsed = runtime.clock.now - t0
        self.metrics.record_latency("scan", elapsed)
        if self.metrics.hist_enabled:
            self.metrics.observe("scan", elapsed)
        return out

    def iterator(self, lo_key: Optional[Key] = None,
                 hi_key: Optional[Key] = None, *,
                 snapshot: SnapshotLike = None) -> DbIterator:
        """A seekable ordered iterator (see :class:`~repro.db.iterator.DbIterator`).

        Like :meth:`iterate` but with :meth:`~repro.db.iterator.DbIterator.seek`
        repositioning through the cached per-sequence key columns instead of
        rebuilding the cursor stack.
        """
        self._check_open()
        return DbIterator(self, lo_key, hi_key, self._snap_seq(snapshot))

    # -------------------------------------------------------------- snapshots
    def snapshot(self) -> Snapshot:
        """Pin the current sequence number for repeatable reads."""
        self._check_open()
        self._snapshots[self._seq] = self._snapshots.get(self._seq, 0) + 1
        return Snapshot(self, self._seq)

    def _release_snapshot(self, seq: int) -> None:
        left = self._snapshots.get(seq, 0) - 1
        if left <= 0:
            self._snapshots.pop(seq, None)
        else:
            self._snapshots[seq] = left

    def _live_snapshots(self) -> Tuple[int, ...]:
        return tuple(sorted(self._snapshots))

    # --------------------------------------------------------------- recovery
    def crash_and_recover(self, crash: Optional[CrashSpec] = None) -> RecoveryReport:
        """Simulate a *hard* process crash and recover from WAL + manifest.

        The crash model destroys everything a power cut would:

        * in-flight and queued background jobs are abandoned mid-I/O -- any
          structural effect they already applied rolls back to the last
          manifest checkpoint, and the files they wrote become orphans
          (swept below);
        * the volatile memtable, immutable memtable and snapshots are gone;
        * with ``crash.torn_tail_records > 0``, that many un-synced WAL tail
          records are lost -- snapped down to a group-commit boundary so an
          acked batch is never half-lost.

        Recovery restores the last checkpointed structure (pristine when no
        flush ever completed), sweeps crash-orphaned files, drops any log
        prefix the checkpoint already covers, replays the surviving WAL into
        a fresh memtable, and rewinds the sequence counter to the recovered
        cut.  Returns a :class:`~repro.faults.crash.RecoveryReport`.
        """
        self._check_open()
        runtime = self.runtime
        # The process dies: background work is dropped on the floor.
        abandoned = runtime.pool.abandon_all()
        self.memtable = Memtable(self.key_size)
        self.immutable = None
        self._imm_job = None
        self._snapshots.clear()
        torn = 0
        if crash is not None and crash.torn_tail_records > 0:
            torn = self.wal.tear(crash.torn_tail_records)
        # Restore the durable structure from the last manifest checkpoint
        # (None = no flush ever completed: the structure is pristine and the
        # WAL still holds every record).
        state = self.manifest.restore()
        durable_seq = 0
        if state is not None:
            durable_seq = state["seq"]
        self.engine.restore_state(state["engine"] if state is not None else None)
        orphans = self._sweep_orphans()
        # A crash between checkpoint and log truncation leaves covered
        # records in the WAL; they are already in the restored structure, so
        # recovery finishes the interrupted truncation.
        if len(self.wal) and self.wal.replay()[0][SEQ] <= durable_seq:
            self.wal.truncate_through(durable_seq)
        # Replay the surviving WAL suffix into a fresh memtable.
        replayed = self.wal.replay()
        self.memtable.add_many(replayed)
        recovered_seq = durable_seq
        for rec in replayed:
            if rec[SEQ] > recovered_seq:
                recovered_seq = rec[SEQ]
        self._seq = recovered_seq
        self.metrics.bump("recovery")
        if runtime.tracer.enabled:
            runtime.tracer.instant("db", "recovery", replayed=len(replayed),
                                   seq=recovered_seq, torn=torn,
                                   orphans=orphans, abandoned=abandoned)
        self._sanitize_db("recovery-end")
        if self.sanitizer is not None:
            self.sanitizer.check_tree(self.engine, event="recovery-end")
        return RecoveryReport(durable_seq=durable_seq,
                              recovered_seq=recovered_seq,
                              replayed_records=len(replayed),
                              torn_records=torn, orphan_files=orphans,
                              abandoned_jobs=abandoned)

    def _sweep_orphans(self) -> int:
        """Delete files no live structure references (crash-orphaned output).

        An abandoned flush or compaction has already written (and grown)
        node files that the restored checkpoint never links; a real system's
        recovery GCs them against the manifest exactly like this.
        """
        live = set(self.engine.live_file_ids())
        live.add(self.wal.file_id)
        live.add(self.manifest.file_id)
        disk = self.runtime.disk
        orphan_ids = [fid for fid in disk.files if fid not in live]
        for fid in orphan_ids:
            self.runtime.delete_file(disk.files[fid])
        return len(orphan_ids)

    # ------------------------------------------------------------- inspection
    def write_amplification(self, *, include_wal: bool = False) -> float:
        return self.metrics.write_amplification(include_wal=include_wal)

    def per_level_write_amplification(self) -> Dict[int, float]:
        return self.metrics.per_level_write_amplification()

    def space_used_bytes(self) -> int:
        return self.runtime.space_used_bytes()

    @observation_only
    def stats(self) -> Dict[str, object]:
        d = self.engine.describe()
        longest = self.metrics.longest_stall()
        d.update({
            "write_amplification": self.write_amplification(),
            "space_used_bytes": self.space_used_bytes(),
            "sim_time_s": self.runtime.clock.now,
            "memtable_bytes": self.memtable.nbytes,
            "cache_hit_rate": self.metrics.cache_hit_rate(),
            "total_stall_s": self.metrics.total_stall_s,
            "longest_stall_s": longest[1] if longest is not None else 0.0,
            "longest_stall_reason": longest[0] if longest is not None else None,
            "stall_breakdown": self.metrics.stall_breakdown().as_dict(
                sim_seconds=self.runtime.clock.now),
        })
        if self.metrics.hist_enabled:
            d["latency_percentiles"] = self.metrics.hist_percentiles()
        return d

    @observation_only
    def check_invariants(self) -> None:
        self.engine.check_invariants()
