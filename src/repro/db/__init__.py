"""IamDB: the public key-value store API.

The paper implements LSA and IAM "in a persistent, crash-recovery and
MVCC-supported key-value storage library, called IamDB" (§6) that "is based
on LevelDB and works as either LSA or IAM with proper configuration".  This
package is that library: one DB wrapper (WAL + memtable + snapshots +
recovery) over any of the engines -- ``iam``, ``lsa``, ``leveldb``,
``rocksdb``, ``flsm``.

    >>> from repro.db import IamDB
    >>> db = IamDB.create("iam")
    >>> db.put(1, b"hello")
    >>> db.get(1)
    b'hello'
"""

from repro.db.batch import WriteBatch
from repro.db.iamdb import IamDB
from repro.db.iterator import merge_visible
from repro.db.snapshot import Snapshot

__all__ = ["IamDB", "Snapshot", "WriteBatch", "merge_visible"]
