"""MVCC snapshots.

A snapshot pins a sequence number: reads through it see the newest version
with ``seq <= snapshot`` and merges keep every version a live snapshot still
needs (§5.2).  Snapshots are context managers; releasing one un-pins its
sequence number so later compactions can collect the garbage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.iamdb import IamDB


class Snapshot:
    """A pinned read view of the database."""

    __slots__ = ("seq", "_db", "_released")

    def __init__(self, db: "IamDB", seq: int) -> None:
        self.seq = seq
        self._db = db
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._db._release_snapshot(self.seq)

    @property
    def released(self) -> bool:
        return self._released

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __int__(self) -> int:
        return self.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self._released else "live"
        return f"Snapshot(seq={self.seq}, {state})"
