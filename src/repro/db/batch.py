"""Atomic write batches (LevelDB's WriteBatch; IamDB is LevelDB-based, §6).

A batch buffers puts/deletes and commits them with consecutive sequence
numbers under a single WAL append run, so either every operation in the
batch becomes durable or none does.  Batches also amortize the WAL's
per-append device trip -- the classic group-commit win.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.common.errors import ReproError
from repro.common.records import Key, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.iamdb import IamDB

PUT_OP = "put"
DELETE_OP = "delete"


class WriteBatch:
    """Buffered operations committed atomically.

    Usable directly (``batch.commit()``) or as a context manager, in which
    case a clean exit commits and an exception discards the batch::

        with db.write_batch() as batch:
            batch.put(1, b"a")
            batch.delete(2)
    """

    __slots__ = ("_db", "_ops", "_committed")

    def __init__(self, db: "IamDB") -> None:
        self._db = db
        self._ops: List[Tuple[str, object, Value]] = []
        self._committed = False

    def put(self, key: Key, value: Value) -> "WriteBatch":
        self._check()
        self._ops.append((PUT_OP, key, value))
        return self

    def delete(self, key: Key) -> "WriteBatch":
        self._check()
        self._ops.append((DELETE_OP, key, 0))
        return self

    def clear(self) -> None:
        self._check()
        self._ops.clear()

    def __len__(self) -> int:
        return len(self._ops)

    def _check(self) -> None:
        if self._committed:
            raise ReproError("WriteBatch already committed")

    def commit(self) -> None:
        """Apply every buffered operation atomically."""
        self._check()
        self._committed = True
        if self._ops:
            self._db._apply_batch(self._ops)
        self._ops = []

    # -------------------------------------------------------------- with ...
    def __enter__(self) -> "WriteBatch":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is None:
            self.commit()
        else:
            self._committed = True  # discard on error
            self._ops = []
