"""The merging iterator: snapshot-consistent visibility over sorted streams.

Scans merge the memtable, the immutable memtable and one cursor per
independently-seeking on-disk component (§5.2: "a scan checks memtable,
immutable memtable and all sequences in a node in every on-disk level and
merges them").  Every stream yields records in (key asc, seq desc) order;
this module collapses them to the newest visible version per key, elides
tombstones, and applies bound/limit cut-offs.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Tuple

from repro.common.records import (
    DELETE,
    KEY,
    KIND,
    Key,
    RecordTuple,
    SEQ,
    VALUE,
    sort_key,
)
from repro.table.scan import MergeScanner, list_stream

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.iamdb import IamDB


def merge_visible(streams: List[Iterable[RecordTuple]], *,
                  snapshot: Optional[int] = None,
                  hi_key: Optional[Key] = None,
                  limit: Optional[int] = None) -> Iterator[Tuple[object, object]]:
    """Yield ``(key, value)`` pairs visible at ``snapshot``.

    ``hi_key`` is exclusive; ``limit`` caps the number of yielded pairs.
    Tombstoned keys are skipped (they still consume nothing from the limit).
    """
    live = [s for s in streams if s is not None]
    if not live:
        return
    merged = live[0] if len(live) == 1 else heapq.merge(*live, key=sort_key)
    served_key = _sentinel = object()
    count = 0
    for rec in merged:
        key = rec[KEY]
        if hi_key is not None and key >= hi_key:
            break
        if key is served_key or key == served_key:
            continue
        if snapshot is not None and rec[SEQ] > snapshot:
            # Invisible version; an older visible one may follow for this key.
            continue
        served_key = key
        if rec[KIND] == DELETE:
            continue
        yield (key, rec[VALUE])
        count += 1
        if limit is not None and count >= limit:
            break


_SENTINEL = object()


class DbIterator:
    """Seekable ordered iterator over ``(key, value)`` pairs.

    The view is fixed at creation time (plus the given snapshot), exactly
    like :meth:`repro.db.iamdb.IamDB.iterate`.  On engines with a batched
    scan plan, :meth:`seek` repositions the pull states through the cached
    per-sequence key columns (one bisect per stream) instead of tearing the
    cursor stack down and re-running the per-level walks; consumed blocks
    are re-touched on the way back through, which the page cache absorbs.
    Engines without a plan fall back to rebuilding the scalar merge.
    """

    def __init__(self, db: "IamDB", lo_key: Optional[Key],
                 hi_key: Optional[Key], snapshot: Optional[int]) -> None:
        self._db = db
        self._lo_key = lo_key
        self._hi_key = hi_key
        self._snapshot = snapshot
        self._served: object = _SENTINEL
        plan = db.engine.scan_plan(lo_key, hi_key)
        if plan is None:
            self._scanner: Optional[MergeScanner] = None
            self._fallback = db.iterate(lo_key, hi_key, snapshot=snapshot)
        else:
            streams = [list_stream(list(db.memtable.iter_range(lo_key, hi_key)))]
            if db.immutable is not None:
                streams.append(list_stream(
                    list(db.immutable.iter_range(lo_key, hi_key))))
            streams.extend(plan)
            self._scanner = MergeScanner(streams)
            self._fallback = None

    def __iter__(self) -> "DbIterator":
        return self

    def __next__(self) -> Tuple[Key, object]:
        if self._scanner is None:
            return next(self._fallback)
        scanner = self._scanner
        hi_key = self._hi_key
        snapshot = self._snapshot
        while True:
            rec = scanner.pull()
            if rec is None:
                raise StopIteration
            key = rec[KEY]
            if hi_key is not None and key >= hi_key:
                raise StopIteration
            served = self._served
            if key is served or key == served:
                continue
            if snapshot is not None and rec[SEQ] > snapshot:
                continue
            self._served = key
            if rec[KIND] == DELETE:
                continue
            return (key, rec[VALUE])

    def seek(self, key: Key) -> None:
        """Reposition at the first visible pair with key >= ``key``.

        The target is clamped into the iterator's ``[lo_key, hi_key)``
        bounds; seeking backwards is allowed.
        """
        target = key
        if self._lo_key is not None and target < self._lo_key:
            target = self._lo_key
        self._served = _SENTINEL
        if self._scanner is None:
            self._fallback = self._db.iterate(target, self._hi_key,
                                              snapshot=self._snapshot)
            return
        for stream in self._scanner.streams:
            stream.reseek(target)
        self._scanner.reset()
