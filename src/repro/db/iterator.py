"""The merging iterator: snapshot-consistent visibility over sorted streams.

Scans merge the memtable, the immutable memtable and one cursor per
independently-seeking on-disk component (§5.2: "a scan checks memtable,
immutable memtable and all sequences in a node in every on-disk level and
merges them").  Every stream yields records in (key asc, seq desc) order;
this module collapses them to the newest visible version per key, elides
tombstones, and applies bound/limit cut-offs.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.common.records import (
    DELETE,
    KEY,
    KIND,
    Key,
    RecordTuple,
    SEQ,
    VALUE,
    sort_key,
)


def merge_visible(streams: List[Iterable[RecordTuple]], *,
                  snapshot: Optional[int] = None,
                  hi_key: Optional[Key] = None,
                  limit: Optional[int] = None) -> Iterator[Tuple[object, object]]:
    """Yield ``(key, value)`` pairs visible at ``snapshot``.

    ``hi_key`` is exclusive; ``limit`` caps the number of yielded pairs.
    Tombstoned keys are skipped (they still consume nothing from the limit).
    """
    live = [s for s in streams if s is not None]
    if not live:
        return
    merged = live[0] if len(live) == 1 else heapq.merge(*live, key=sort_key)
    served_key = _sentinel = object()
    count = 0
    for rec in merged:
        key = rec[KEY]
        if hi_key is not None and key >= hi_key:
            break
        if key is served_key or key == served_key:
            continue
        if snapshot is not None and rec[SEQ] > snapshot:
            # Invisible version; an older visible one may follow for this key.
            continue
        served_key = key
        if rec[KIND] == DELETE:
            continue
        yield (key, rec[VALUE])
        count += 1
        if limit is not None and count >= limit:
            break
