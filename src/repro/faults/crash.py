"""Hard crash model: crash-point scheduler + durability-contract matrix.

The write pipeline is instrumented with named *crash sites* (the catalog in
:data:`CRASH_SITES`).  A :class:`CrashPoints` scheduler counts every visit
and, when armed with ``(site, occurrence)``, raises :class:`SimulatedCrash`
at exactly that visit -- cutting the pipeline mid-operation the way a power
loss would.  ``IamDB.crash_and_recover`` then models what a real crash
destroys: in-flight background jobs are abandoned (their output becomes
orphaned files), the volatile memtable is gone, and optionally the WAL tail
is *torn* (un-synced records lost, snapped to a group-commit boundary).

:func:`run_crash_matrix` enumerates every reachable site deterministically
and asserts the durability contract after each recovery:

* ``recovered_seq`` lands on a group-commit boundary -- an acked batch is
  wholly present or wholly absent, never half-applied;
* every write at or below the recovered cut reads back exactly per a pure
  in-memory model; nothing newer leaks through;
* the engine's structural invariants (and, when enabled, the full
  :mod:`repro.check` sanitizer walk) hold immediately after recovery *and*
  after the workload keeps running on the recovered tree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError, InvariantViolation

#: Every instrumented site in the write pipeline, in pipeline order.
CRASH_SITES: Tuple[str, ...] = (
    "post-wal-append",    # record durable in WAL, not yet in the memtable
    "post-rotate",        # memtable rotated, flush queued but not started
    "mid-flush",          # flush applied structurally, I/O debt unpaid
    "post-compact",       # compaction applied structurally, debt unpaid
    "mid-compact",        # leveled: inputs removed, outputs not yet linked
    "mid-split",          # lsa: node removed from level, pieces not linked
    "mid-combine",        # lsa: victim merged down, not yet removed above
    "pre-checkpoint",     # flush durable, manifest not yet checkpointed
    "post-checkpoint",    # manifest checkpointed, WAL not yet truncated
    "pre-objstore-log",     # objects uploaded, manifest-log cut not appended
    "post-objstore-log",    # manifest-log cut appended, cleanup not yet run
    "mid-objstore-cleanup",  # dead segments picked, deletes not yet issued
)


class SimulatedCrash(Exception):
    """A crash point fired: the process dies here.

    Deliberately *not* a :class:`~repro.common.errors.ReproError` -- generic
    error handling must never swallow a simulated power cut.
    """

    def __init__(self, site: str, occurrence: int) -> None:
        super().__init__(f"simulated crash at {site} (occurrence {occurrence})")
        self.site = site
        self.occurrence = occurrence


@dataclass(frozen=True)
class CrashSpec:
    """What the crash destroys beyond volatile state.

    ``torn_tail_records``: up to this many trailing WAL records were still in
    the device write buffer and are lost (``WriteAheadLog.tear`` snaps the
    keep-point down to a group-commit boundary).
    """

    torn_tail_records: int = 0


@dataclass
class RecoveryReport:
    """What one recovery pass did (returned by ``crash_and_recover``)."""

    durable_seq: int          #: last manifest-checkpointed sequence
    recovered_seq: int        #: sequence the DB resumed from
    replayed_records: int     #: WAL records replayed into the memtable
    torn_records: int         #: WAL tail records lost to the crash
    orphan_files: int         #: crash-orphaned files swept during recovery
    abandoned_jobs: int       #: in-flight/queued background jobs dropped

    def as_dict(self) -> Dict[str, int]:
        return {
            "durable_seq": self.durable_seq,
            "recovered_seq": self.recovered_seq,
            "replayed_records": self.replayed_records,
            "torn_records": self.torn_records,
            "orphan_files": self.orphan_files,
            "abandoned_jobs": self.abandoned_jobs,
        }


class CrashPoints:
    """Deterministic crash-site scheduler.

    Counts every site visit; when armed with ``site`` and ``occurrence`` it
    raises :class:`SimulatedCrash` at exactly that visit, once.  A disarmed
    instance (``site=None``) is a pure profiler: run the workload under it
    first to learn which sites are reachable and how often.
    """

    def __init__(self, site: Optional[str] = None, occurrence: int = 1) -> None:
        if site is not None and site not in CRASH_SITES:
            raise ConfigError(f"unknown crash site {site!r}")
        if occurrence < 1:
            raise ConfigError("occurrence must be >= 1")
        self.site = site
        self.occurrence = occurrence
        self.counts: Dict[str, int] = {}
        self.fired = False

    def reached(self, site: str) -> None:
        """Pipeline hook: note a visit; crash if this is the armed one."""
        self.counts[site] = self.counts.get(site, 0) + 1
        if (not self.fired and site == self.site
                and self.counts[site] == self.occurrence):
            self.fired = True
            raise SimulatedCrash(site, self.occurrence)


# --------------------------------------------------------------------------
# Deterministic workload for the matrix (tiny trees, like tests/conftest.py).
# --------------------------------------------------------------------------

#: Wide enough that the tiny trees split (mid-split coverage), small enough
#: that keys are overwritten and combined (mid-combine coverage).
_KEYSPACE = 2000


def _tiny_db(engine: str, *, sanitize: bool = True) -> Any:
    from repro.common.options import IamOptions, LsmOptions, SSD, StorageOptions
    from repro.db.iamdb import IamDB

    storage = StorageOptions(device=SSD, page_cache_bytes=16 * 1024,
                             block_size=256)
    opts: Any
    if engine in ("iam", "lsa"):
        opts = IamOptions(node_capacity=2048, fanout=3, key_size=8,
                          bloom_bits_per_key=14, retune_interval=2)
    else:
        style = "rocksdb" if engine == "rocksdb" else "leveldb"
        base = dict(memtable_bytes=2048, file_bytes=1024, level1_bytes=3072,
                    level_size_multiplier=4, max_levels=5, key_size=8)
        opts = (LsmOptions.rocksdb(**base) if style == "rocksdb"
                else LsmOptions.leveldb(**base))
    sanitizer_options = None
    if sanitize:
        from repro.check.sanitizer import SanitizerOptions
        sanitizer_options = SanitizerOptions(halt_on_violation=True)
    return IamDB(engine, engine_options=opts, storage_options=storage,
                 sanitizer_options=sanitizer_options)


#: One op: ("put", key, value) | ("del", key, None) | ("batch", sub_ops, None)
Op = Tuple[str, Any, Any]


def _make_ops(seed: int, n_ops: int) -> List[Op]:
    """A seeded put/delete/batch mix over a small keyspace."""
    rng = random.Random(seed)
    ops: List[Op] = []
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.60:
            ops.append(("put", rng.randrange(_KEYSPACE),
                        rng.randrange(16, 96)))
        elif roll < 0.80:
            ops.append(("del", rng.randrange(_KEYSPACE), None))
        else:
            sub: List[Tuple[str, int, Optional[int]]] = []
            for _ in range(rng.randrange(2, 6)):
                if rng.random() < 0.8:
                    sub.append(("put", rng.randrange(_KEYSPACE),
                                rng.randrange(16, 96)))
                else:
                    sub.append(("del", rng.randrange(_KEYSPACE), None))
            ops.append(("batch", sub, None))
    return ops


def _op_records(op: Op) -> int:
    return len(op[1]) if op[0] == "batch" else 1


def _end_seqs(ops: Sequence[Op]) -> List[int]:
    """Sequence number at which each op's commit completes (cumulative)."""
    out: List[int] = []
    seq = 0
    for op in ops:
        seq += _op_records(op)
        out.append(seq)
    return out


def _apply_op(db: Any, op: Op) -> None:
    kind, payload, value = op
    if kind == "put":
        db.put(payload, value)
    elif kind == "del":
        db.delete(payload)
    else:
        batch = db.write_batch()
        for skind, key, sval in payload:
            if skind == "put":
                batch.put(key, sval)
            else:
                batch.delete(key)
        batch.commit()


def _apply_to_model(model: Dict[Any, Any], op: Op) -> None:
    kind, payload, value = op
    if kind == "put":
        model[payload] = value
    elif kind == "del":
        model.pop(payload, None)
    else:
        for skind, key, sval in payload:
            if skind == "put":
                model[key] = sval
            else:
                model.pop(key, None)


def _model_at(ops: Sequence[Op], n_applied: int) -> Dict[Any, Any]:
    model: Dict[Any, Any] = {}
    for op in ops[:n_applied]:
        _apply_to_model(model, op)
    return model


def _touched_keys(ops: Sequence[Op]) -> List[Any]:
    keys = set()
    for kind, payload, _ in ops:
        if kind == "batch":
            keys.update(k for _, k, _ in payload)
        else:
            keys.add(payload)
    return sorted(keys)


def _spread(count: int, per_site: int) -> List[int]:
    """Up to ``per_site`` occurrence indices spread evenly over 1..count."""
    if count <= 0:
        return []
    if per_site >= count:
        return list(range(1, count + 1))
    if per_site == 1:
        return [1]
    picks = {1 + ((count - 1) * i) // (per_site - 1)
             for i in range(per_site)}
    return sorted(picks)


# --------------------------------------------------------------------------
# The matrix driver.
# --------------------------------------------------------------------------

def _profile_sites(engine: str, ops: Sequence[Op], *,
                   sanitize: bool) -> Dict[str, int]:
    """Run the workload crash-free; returns per-site visit counts."""
    db = _tiny_db(engine, sanitize=sanitize)
    cp = CrashPoints()  # disarmed: pure counter
    db.runtime.arm_crash_points(cp)
    for op in ops:
        _apply_op(db, op)
    db.quiesce()
    # Baseline sanity: the clean run must match the model exactly.
    model = _model_at(ops, len(ops))
    for key in _touched_keys(ops):
        got = db.get(key)
        want = model.get(key)
        if got != want:
            raise InvariantViolation(
                f"baseline workload mismatch on {engine}: "
                f"key {key!r} -> {got!r}, want {want!r}")
    db.check_invariants()
    return dict(cp.counts)


def _run_case(engine: str, ops: Sequence[Op], site: str, occurrence: int,
              torn: int, *, sanitize: bool) -> Dict[str, Any]:
    """One matrix cell: crash at (site, occurrence), recover, validate."""
    db = _tiny_db(engine, sanitize=sanitize)
    cp = CrashPoints(site, occurrence)
    db.runtime.arm_crash_points(cp)
    end_seqs = _end_seqs(ops)
    case: Dict[str, Any] = {
        "engine": engine, "site": site, "occurrence": occurrence,
        "torn": torn, "crashed": False, "ok": False,
    }

    def recover_and_validate(crash_op_index: int) -> int:
        """Recover; check the durability contract; return the resume index."""
        report = db.crash_and_recover(CrashSpec(torn_tail_records=torn))
        case["report"] = report.as_dict()
        recovered = report.recovered_seq
        # Contract 1: the recovered cut is a group-commit boundary no newer
        # than the op that was in flight when the crash hit.
        valid_cuts = {0}
        valid_cuts.update(end_seqs[:crash_op_index + 1])
        if recovered not in valid_cuts:
            raise InvariantViolation(
                f"recovered_seq {recovered} is not a commit boundary "
                f"(crash during op {crash_op_index})")
        if torn == 0 and crash_op_index > 0 and \
                recovered < end_seqs[crash_op_index - 1]:
            raise InvariantViolation(
                f"untorn recovery lost acked writes: recovered_seq "
                f"{recovered} < acked {end_seqs[crash_op_index - 1]}")
        # Contract 2: reads match the model replayed to that cut exactly.
        n_applied = 0
        while n_applied < len(end_seqs) and end_seqs[n_applied] <= recovered:
            n_applied += 1
        model = _model_at(ops, n_applied)
        for key in _touched_keys(ops[:crash_op_index + 1]):
            got = db.get(key)
            want = model.get(key)
            if got != want:
                raise InvariantViolation(
                    f"post-recovery mismatch: key {key!r} -> {got!r}, "
                    f"want {want!r} at seq {recovered}")
        # Contract 3: the recovered structure is internally consistent.
        db.check_invariants()
        return n_applied

    try:
        i = 0
        while i < len(ops):
            try:
                _apply_op(db, ops[i])
                i += 1
            except SimulatedCrash:
                case["crashed"] = True
                i = recover_and_validate(i)
        try:
            db.quiesce()
        except SimulatedCrash:
            # The armed visit lives in the final drain (e.g. a provider
            # compaction that only runs at quiesce).
            case["crashed"] = True
            recover_and_validate(len(ops) - 1)
            db.quiesce()
        # The workload keeps running after recovery: the final state must
        # match the full model (crashed ops were re-applied above).
        model = _model_at(ops, len(ops))
        for key in _touched_keys(ops):
            got = db.get(key)
            want = model.get(key)
            if got != want:
                raise InvariantViolation(
                    f"final mismatch: key {key!r} -> {got!r}, want {want!r}")
        db.check_invariants()
        case["ok"] = True
    except Exception as exc:  # noqa: BLE001 - every failure becomes a report row
        case["error"] = f"{type(exc).__name__}: {exc}"
    if db.sanitizer is not None:
        case["sanitizer_violations"] = db.sanitizer.violation_count
        if case["ok"] and db.sanitizer.violation_count:
            case["ok"] = False
            case["error"] = "sanitizer recorded violations"
    return case


def run_crash_matrix(engines: Sequence[str] = ("iam", "leveldb"), *,
                     n_ops: int = 400, per_site: int = 2, seed: int = 1,
                     torn_variants: Sequence[int] = (0, 4),
                     sanitize: bool = True) -> Dict[str, Any]:
    """Enumerate crash points across the pipeline; assert the contract.

    For each engine: profile which sites the seeded workload reaches, then
    for every reachable site crash at up to ``per_site`` evenly-spread
    occurrences, for each torn-tail variant, recover, and validate.  Returns
    a JSON-able report; ``report["failures"]`` is empty iff the durability
    contract held everywhere.
    """
    ops = _make_ops(seed, n_ops)
    report: Dict[str, Any] = {
        "params": {"engines": list(engines), "n_ops": n_ops,
                   "per_site": per_site, "seed": seed,
                   "torn_variants": list(torn_variants)},
        "sites": {}, "cases": [], "failures": [],
    }
    for engine in engines:
        counts = _profile_sites(engine, ops, sanitize=sanitize)
        report["sites"][engine] = counts
        for site in CRASH_SITES:
            for occurrence in _spread(counts.get(site, 0), per_site):
                for torn in torn_variants:
                    case = _run_case(engine, ops, site, occurrence, torn,
                                     sanitize=sanitize)
                    report["cases"].append(case)
                    if not case["ok"]:
                        report["failures"].append(case)
    report["n_cases"] = len(report["cases"])
    report["n_failures"] = len(report["failures"])
    return report
