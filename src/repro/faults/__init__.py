"""Deterministic fault injection and crash-point scheduling.

Two adversaries for the write pipeline, both fully deterministic on the
simulated substrate (no wall clock, no ambient randomness):

* :mod:`repro.faults.plan` -- seeded transient device-I/O faults with retry
  + exponential backoff (foreground) and bounded-retries -> job-failure
  (background), exercising graceful degradation.
* :mod:`repro.faults.crash` -- a hard crash model (torn WAL tail, lost
  in-flight flush output, un-checkpointed manifest edits) plus a scheduler
  that enumerates crash sites across the write pipeline and asserts the
  durability contract at each one.
"""

from repro.faults.crash import (CRASH_SITES, CrashPoints, CrashSpec,
                                RecoveryReport, SimulatedCrash,
                                run_crash_matrix)
from repro.faults.plan import FaultInjector, FaultPlan, parse_fault_spec

__all__ = [
    "CRASH_SITES",
    "CrashPoints",
    "CrashSpec",
    "FaultInjector",
    "FaultPlan",
    "RecoveryReport",
    "SimulatedCrash",
    "parse_fault_spec",
    "run_crash_matrix",
]
