"""Seeded transient-fault plans and the injector that applies them.

A :class:`FaultPlan` decides, per I/O *attempt*, whether the simulated
device fails that attempt.  Decisions come from three sources, all
deterministic: explicit attempt-index windows, sim-time windows, and a
seeded splitmix64 roll against ``FaultOptions.rate``.  One global attempt
counter is shared by foreground I/O and background job activations, so a
run's fault sequence is a pure function of (options, workload).

The :class:`FaultInjector` wires a plan into one storage stack:

* Foreground I/O (``SimDisk.fg_io`` / ``fg_stream``) retries with
  exponential backoff -- the user write gets slower, never lost.  Past
  ``max_retries`` the backoff plateaus at ``giveup_backoff_s`` (a real
  device driver keeps retrying the WAL write too; §6.2's stalls are the
  observable effect).
* Background activation faults are handled by the pool itself
  (:meth:`BackgroundPool._job_fault`): bounded retries, then job failure
  with engine-level re-queue (compactions) or forced re-queue (flushes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.common.errors import InvariantViolation, TransientIOError
from repro.common.hashing import MASK64, splitmix64
from repro.common.options import ConfigError, FaultOptions
from repro.check.effects.registry import effects

if TYPE_CHECKING:  # pragma: no cover
    from repro.objstore.store import SimObjectStore
    from repro.storage.background import BackgroundJob
    from repro.storage.runtime import Runtime
    from repro.storage.simdisk import SimClock, SimDisk

#: Retry attempts per single logical I/O before declaring the plan broken;
#: far above anything a rate < 1 plan can produce (backoff escapes time
#: windows and op windows consume indices, so real plans always terminate).
_RETRY_GUARD = 10_000


class FaultPlan:
    """Deterministic per-attempt fault decisions for one run."""

    __slots__ = ("options", "ops", "_mixed_seed")

    def __init__(self, options: FaultOptions) -> None:
        self.options = options
        #: Global I/O-attempt counter (foreground requests and background
        #: job activation attempts both consume indices).
        self.ops = 0
        self._mixed_seed = splitmix64(options.seed & MASK64)

    def attempt_fails(self, now: float) -> bool:
        """Consume one attempt index; True if that attempt faults."""
        i = self.ops
        self.ops += 1
        o = self.options
        for lo, hi in o.op_windows:
            if lo <= i < hi:
                return True
        for tlo, thi in o.time_windows:
            if tlo <= now < thi:
                return True
        if o.rate > 0.0:
            roll = splitmix64((self._mixed_seed + i) & MASK64)
            return roll < o.rate * 2.0**64
        return False

    def check(self, now: float) -> None:
        """Raise :class:`TransientIOError` when the next attempt faults."""
        if self.attempt_fails(now):
            raise TransientIOError(
                f"injected device fault (attempt index {self.ops - 1})")


class FaultInjector:
    """Applies one :class:`FaultPlan` to one storage stack."""

    def __init__(self, options: FaultOptions, runtime: "Runtime") -> None:
        self.options = options
        self.runtime = runtime
        self.plan = FaultPlan(options)
        # Counters for reporting (metrics carry the event-stream view).
        self.fg_errors = 0
        self.job_faults = 0
        self.giveups = 0

    # ------------------------------------------------------------- foreground
    @effects("CLOCK_ADVANCE", "STATE_MUTATE")
    def on_foreground_io(self, disk: "SimDisk") -> None:
        """Retry loop in front of every foreground device request.

        Each faulted attempt advances the clock by the backoff delay; the
        caller's request then proceeds normally, so injected faults surface
        purely as added latency (plus trace/metric events).
        """
        self._foreground_retry(disk.clock)

    @effects("CLOCK_ADVANCE", "STATE_MUTATE")
    def on_objstore_request(self, store: "SimObjectStore") -> None:
        """Same retry loop in front of every foreground object-store request.

        Transient store faults (throttling, 5xx) share the plan's single
        attempt stream with device I/O, so a run's fault sequence stays a
        pure function of (options, workload).
        """
        self._foreground_retry(store.clock)

    @effects("CLOCK_ADVANCE", "STATE_MUTATE")
    def _foreground_retry(self, clock: "SimClock") -> None:
        if not self.options.enabled:
            return
        o = self.options
        attempt = 0
        while True:
            try:
                self.plan.check(clock.now)
                return
            except TransientIOError:
                attempt += 1
                if attempt > _RETRY_GUARD:
                    raise InvariantViolation(
                        "fault plan never lets a foreground I/O through "
                        "(rate too close to 1?)") from None
                self.fg_errors += 1
                self.runtime.metrics.bump("fault:fg-error")
                tracer = self.runtime.tracer
                if tracer.enabled:
                    tracer.instant("fault", "fg-retry", attempt=attempt)
                if attempt <= o.max_retries:
                    backoff = min(o.backoff_base_s * (2.0 ** (attempt - 1)),
                                  o.backoff_max_s)
                else:
                    # A real driver keeps retrying the log device; plateau
                    # at the give-up pace instead of failing the user write.
                    backoff = o.giveup_backoff_s
                    self.runtime.metrics.bump("fault:fg-giveup")
                clock.advance(backoff)

    # ------------------------------------------------------------- background
    def job_attempt_fails(self, job: "BackgroundJob") -> bool:
        """Fault decision for one background activation attempt."""
        if not self.options.enabled:
            return False
        failed = self.plan.attempt_fails(self.runtime.clock.now)
        if failed:
            self.job_faults += 1
        return failed

    # -------------------------------------------------------------- reporting
    def snapshot(self) -> Dict[str, object]:
        o = self.options
        return {
            "seed": o.seed,
            "rate": o.rate,
            "op_windows": [list(w) for w in o.op_windows],
            "time_windows": [list(w) for w in o.time_windows],
            "max_retries": o.max_retries,
            "attempts": self.plan.ops,
            "fg_errors": self.fg_errors,
            "job_faults": self.job_faults,
            "giveups": self.giveups,
        }


def parse_fault_spec(spec: str) -> FaultOptions:
    """Parse a CLI ``--faults`` spec into :class:`FaultOptions`.

    Comma-separated ``key=value`` pairs::

        rate=0.01,seed=7,retries=4,ops=100:200,time=0.5:0.75

    ``ops`` and ``time`` may repeat and add half-open fault windows (attempt
    indices / sim-seconds).  Remaining keys: ``backoff`` (base seconds),
    ``backoff_max``, ``giveup``.
    """
    kwargs: Dict[str, object] = {}
    op_windows = []
    time_windows = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigError(f"bad --faults entry {part!r} (want key=value)")
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "rate":
                kwargs["rate"] = float(value)
            elif key == "retries":
                kwargs["max_retries"] = int(value)
            elif key == "backoff":
                kwargs["backoff_base_s"] = float(value)
            elif key == "backoff_max":
                kwargs["backoff_max_s"] = float(value)
            elif key == "giveup":
                kwargs["giveup_backoff_s"] = float(value)
            elif key == "ops":
                lo, _, hi = value.partition(":")
                op_windows.append((int(lo), int(hi)))
            elif key == "time":
                lo, _, hi = value.partition(":")
                time_windows.append((float(lo), float(hi)))
            else:
                raise ConfigError(f"unknown --faults key {key!r}")
        except ValueError as exc:
            raise ConfigError(f"bad --faults value {part!r}: {exc}") from None
    if op_windows:
        kwargs["op_windows"] = tuple(op_windows)
    if time_windows:
        kwargs["time_windows"] = tuple(time_windows)
    return FaultOptions(**kwargs)  # type: ignore[arg-type]
