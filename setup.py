"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed editable (``python setup.py develop`` /
``pip install -e .``) on machines without the ``wheel`` package.
"""

from setuptools import setup

setup()
