#!/usr/bin/env python3
"""The IAM mixed level in action (§5.1): how memory tunes m and k.

Loads the same dataset under different page-cache sizes and shows the tuner
(Eq. 1-2) moving the mixed level, plus the two degenerate configurations:
m=1,k=1 behaves like LSM; m>n behaves like LSA.

Run:  python examples/tune_mixed_level.py
"""

from repro import IamDB, IamOptions, StorageOptions
from repro.bench.report import format_table
from repro.bench.scale import KEY_SIZE, SSD_100G
from repro.workloads import hash_load

N_RECORDS = 40_000


def run(label: str, engine_options: IamOptions, cache_bytes: int):
    db = IamDB("iam", engine_options=engine_options,
               storage_options=StorageOptions(page_cache_bytes=cache_bytes))
    rep = hash_load(db, N_RECORDS, quiesce=False)
    d = db.engine.describe()
    row = [label, f"{cache_bytes / 1e6:.1f}", d["m"], d["k"],
           dict(d["level_classes"]),
           round(rep.write_amplification, 2), round(rep.throughput)]
    db.close()
    return row


def main() -> None:
    base = SSD_100G.memory_bytes
    rows = [
        run("tuned, mem/4", IamOptions(key_size=KEY_SIZE), base // 4),
        run("tuned, mem", IamOptions(key_size=KEY_SIZE), base),
        run("tuned, mem*4", IamOptions(key_size=KEY_SIZE), base * 4),
        run("LSM mode (m=1,k=1)", IamOptions(key_size=KEY_SIZE).as_lsm(), base),
        run("LSA mode (m>n)", IamOptions(key_size=KEY_SIZE).as_lsa(), base),
    ]
    print(format_table(
        ["config", "cache MB", "m", "k", "level classes", "WA", "ops/s"],
        rows, title="Mixed-level tuning (Eq. 1-2) across memory sizes"))
    print("\nMore memory -> higher mixed level / larger k -> fewer merges ->")
    print("lower write amplification, approaching LSA; with no appends (m=1,")
    print("k=1) IAM degenerates into LSM behaviour (§1).")


if __name__ == "__main__":
    main()
