#!/usr/bin/env python3
"""Side-by-side Perfetto trace of §6.2's overflow story: LevelDB vs IAM.

Hash-loads the same dataset into the LevelDB baseline ("L") and the paper's
IAM tree ("I-1t"), tracing both runs on the simulated clock, and writes one
merged Chrome trace-event file with the two engines as separate processes
(pid 1 = LevelDB, pid 2 = IAM).  Drop the file onto https://ui.perfetto.dev
to see, on a shared timeline:

* LevelDB's compaction spans piling up behind the write gate -- the
  "serious data overflows" and multi-second stalls of §6.2;
* IAM's short append/merge spans and flat pending-debt counter -- the
  stable-throughput timeline of Fig. 8.

Run:  python examples/trace_compaction.py [n_records] [out.json]
"""

import sys

from repro.bench.scale import RECORD_BYTES, SSD_100G, make_db
from repro.obs import TraceConfig, attach_trace, merge_chrome_traces, \
    validate_chrome_trace, write_json
from repro.workloads import hash_load

#: Target number of sampler rows over the load (per engine).
TARGET_SAMPLES = 80


def sample_interval_s(n_records: int) -> float:
    """A deterministic interval from record-count arithmetic (no wall clock).

    The load writes at least ``n_records * RECORD_BYTES`` device bytes at the
    SSD's bandwidth; dividing that lower bound on the simulated duration by
    the sample target gives >= TARGET_SAMPLES rows (more once compactions
    amplify the traffic).
    """
    min_sim_s = n_records * RECORD_BYTES / SSD_100G.device.write_bandwidth
    return max(1e-7, min_sim_s / TARGET_SAMPLES)


def traced_load(config: str, n_records: int, pid: int):
    db = make_db(config, SSD_100G)
    session = attach_trace(
        db, TraceConfig(sample_interval_s=sample_interval_s(n_records)))
    report = hash_load(db, n_records, quiesce=True)
    session.finish()
    trace = session.to_chrome(pid=pid, process_name=f"{config} ({db.engine.name})")
    stats = db.stats()
    print(f"{config:<5} WA={report.write_amplification:>5.2f} "
          f"sim_time={db.clock_now * 1e3:>8.2f}ms "
          f"stall={stats['total_stall_s'] * 1e3:>8.3f}ms "
          f"(longest {stats['longest_stall_s'] * 1e3:.3f}ms: "
          f"{stats['longest_stall_reason']}) "
          f"spans={session.tracer.spans_opened} "
          f"samples={len(session.sampler.rows)}")
    db.close()
    return trace


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    out = sys.argv[2] if len(sys.argv) > 2 else "trace_side_by_side.json"
    print(f"hash-loading {n} records into LevelDB (pid 1) and IAM (pid 2)...")
    merged = merge_chrome_traces([
        traced_load("L", n, pid=1),
        traced_load("I-1t", n, pid=2),
    ])
    problems = validate_chrome_trace(merged)
    if problems:
        for p in problems:
            print(f"TRACE SCHEMA: {p}", file=sys.stderr)
        raise SystemExit(1)
    write_json(out, merged)
    print(f"\nwrote merged trace to {out} (load it at https://ui.perfetto.dev)")
    print("Expected shape (§6.2 / Fig. 8): LevelDB's timeline is dominated by")
    print("long compact:Ln spans and write-gate stalls; IAM shows short,")
    print("evenly spaced append/merge spans and a flat pending-debt track.")


if __name__ == "__main__":
    main()
