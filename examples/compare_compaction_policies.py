#!/usr/bin/env python3
"""The paper's headline experiment, as an example: hash-load the same dataset
into every engine and compare write amplification, throughput, tail latency
and disk footprint (a pocket Figure 6 + Table 4 + §6.2).

Run:  python examples/compare_compaction_policies.py [n_records]
"""

import sys

from repro.bench.report import format_table
from repro.bench.scale import ENGINE_CONFIGS, SSD_100G, make_db
from repro.workloads import hash_load


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    rows = []
    for config in ("L", "R-1t", "R-4t", "A-1t", "I-1t"):
        db = make_db(config, SSD_100G)
        rep = hash_load(db, n, quiesce=False)
        ins = db.metrics.latency["insert"]
        rows.append([
            config,
            round(rep.write_amplification, 2),
            round(rep.throughput),
            f"{ins.p99() * 1e6:.1f}us",
            f"{ins.max * 1e3:.2f}ms",
            round(rep.space_used_bytes / 1e6, 2),
            db.engine.describe().get("m", "-"),
            db.engine.describe().get("k", "-"),
        ])
        db.close()
    print(format_table(
        ["config", "WA", "ops/s", "p99", "max", "space MB", "m", "k"],
        rows,
        title=f"Hash-loading {n} records on the simulated SSD "
              f"(L=LevelDB, R=RocksDB, A=LSA, I=IAM; -nt = n bg threads)",
    ))
    print("\nExpected shape (paper Fig. 6/Table 4): LSA loads fastest with the")
    print("smallest WA, IAM second, both beating the LSM baselines; LevelDB")
    print("shows the burstiest maximum insert latency.")


if __name__ == "__main__":
    main()
