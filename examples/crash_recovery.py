#!/usr/bin/env python3
"""Durability walk-through: WAL + manifest recovery (§6's "persistent,
crash-recovery ... storage library").

Writes data in three phases, crashing between them, and verifies that every
acknowledged write survives -- including tombstones and records that were
sitting only in the memtable when the crash hit.

Run:  python examples/crash_recovery.py
"""

import random

from repro import IamDB


def main() -> None:
    db = IamDB.create("iam")
    rng = random.Random(2026)
    expected = {}

    for phase in range(1, 4):
        for _ in range(3000):
            key = rng.randrange(2000)
            if rng.random() < 0.15:
                db.delete(key)
                expected.pop(key, None)
            else:
                value = rng.randrange(64, 512)
                db.put(key, value)
                expected[key] = value
        in_memtable = len(db.memtable)
        db.crash_and_recover()
        survived = sum(1 for k, v in expected.items() if db.get(k) == v)
        missing = sum(1 for k in range(2000)
                      if db.get(k) != expected.get(k))
        print(f"phase {phase}: crashed with {in_memtable} memtable records; "
              f"{survived}/{len(expected)} live keys recovered, "
              f"{missing} mismatches")
        assert missing == 0

    rows = db.scan(None, None)
    assert rows == sorted(expected.items())
    print(f"\nfinal scan: {len(rows)} rows, all consistent with the oracle")
    print(f"recoveries performed: {db.metrics.events['recovery']}")
    db.close()


if __name__ == "__main__":
    main()
