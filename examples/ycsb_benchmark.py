#!/usr/bin/env python3
"""Run a YCSB workload against any engine on either device profile.

Usage:
    python examples/ycsb_benchmark.py [workload] [engine] [device] [n_ops]

    workload: A B C D E F G        (default A)
    engine:   iam lsa leveldb rocksdb flsm   (default iam)
    device:   ssd hdd              (default ssd)
    n_ops:    run-phase operations (default 3000)

Example:
    python examples/ycsb_benchmark.py E iam hdd 1000
"""

import sys

from repro import HDD, SSD, IamDB, StorageOptions
from repro.bench.scale import KEY_SIZE, SSD_100G
from repro.common.options import IamOptions, LsmOptions
from repro.workloads import YCSB_WORKLOADS, hash_load, run_ycsb


def build_db(engine: str, device_name: str) -> IamDB:
    device = HDD if device_name == "hdd" else SSD
    storage = StorageOptions(device=device,
                             page_cache_bytes=SSD_100G.memory_bytes)
    if engine in ("iam", "lsa"):
        opts = IamOptions(key_size=KEY_SIZE)
    elif engine == "rocksdb":
        opts = LsmOptions.rocksdb(key_size=KEY_SIZE)
    else:
        opts = LsmOptions.leveldb(key_size=KEY_SIZE)
    return IamDB(engine, engine_options=opts, storage_options=storage)


def main() -> None:
    workload = (sys.argv[1] if len(sys.argv) > 1 else "A").upper()
    engine = sys.argv[2] if len(sys.argv) > 2 else "iam"
    device = sys.argv[3] if len(sys.argv) > 3 else "ssd"
    n_ops = int(sys.argv[4]) if len(sys.argv) > 4 else 3000
    spec = YCSB_WORKLOADS[workload]

    n_records = 30_000
    db = build_db(engine, device)
    print(f"loading {n_records} records into {engine} on {device}...")
    load = hash_load(db, n_records, quiesce=False)
    print(f"  load: {load.throughput:,.0f} ops/s, "
          f"WA {load.write_amplification:.2f}")

    print(f"running YCSB-{workload} ({n_ops} ops)...")
    rep = run_ycsb(db, spec, n_ops, n_records)
    print(f"  throughput: {rep.throughput:,.0f} ops/s "
          f"({rep.sim_seconds * 1e3:.2f} simulated ms)")
    for op, digest in sorted(rep.latency.items()):
        print(f"  {op:>7}: n={digest['count']:>6.0f}  "
              f"p50={digest['p50'] * 1e6:8.1f}us  "
              f"p99={digest['p99'] * 1e6:8.1f}us  "
              f"max={digest['max'] * 1e3:8.2f}ms")
    db.close()


if __name__ == "__main__":
    main()
