#!/usr/bin/env python3
"""Quickstart: the IamDB public API in two minutes.

Creates an IAM-tree store on the simulated SSD, writes/reads/deletes keys,
scans a range, takes an MVCC snapshot, survives a crash, and prints the
store's structure and amplification statistics.

Run:  python examples/quickstart.py
"""

from repro import IamDB


def main() -> None:
    db = IamDB.create("iam")  # engines: iam | lsa | leveldb | rocksdb | flsm

    # -- writes ------------------------------------------------------------
    db.put(1, b"hello")          # real bytes values...
    db.put(2, b"world")
    for key in range(10, 2000):
        db.put(key, 256)         # ...or synthetic 256-byte payloads
    db.delete(2)

    # -- reads -------------------------------------------------------------
    print("get(1)      ->", db.get(1))
    print("get(2)      ->", db.get(2), "(deleted)")
    print("scan(10,15) ->", db.scan(10, 15))

    # -- MVCC snapshots ------------------------------------------------------
    with db.snapshot() as snap:
        db.put(1, b"changed")
        print("get(1)           ->", db.get(1))
        print("get(1, snapshot) ->", db.get(1, snap))

    # -- crash recovery ------------------------------------------------------
    db.put(3, b"durable?")
    db.crash_and_recover()       # loses the memtable, replays the WAL
    print("after crash, get(3) ->", db.get(3))

    # -- introspection -------------------------------------------------------
    db.quiesce()
    stats = db.stats()
    print("\nengine:", stats["engine"])
    print("levels:", stats["levels"])
    print(f"write amplification: {stats['write_amplification']:.2f}")
    print(f"space used: {stats['space_used_bytes'] / 1e6:.2f} MB")
    print(f"simulated time: {stats['sim_time_s'] * 1e3:.2f} ms")
    db.close()


if __name__ == "__main__":
    main()
