"""Figure 6: hash-load throughput normalized to LevelDB.

Paper shapes (bars normalized to L):

* LSA is the best loader everywhere (smallest WA), IAM second among the
  proposed trees; both beat LevelDB on every setup (IamDB 1.4-2.7x).
* Single-threaded RocksDB is the poorest or near-LevelDB; R-4t recovers.
* Absolute LevelDB IOPS drop from SSD to HDD and again at 1 TB.
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.harness import exp_fig6
from repro.bench.report import format_table, normalize_to
from repro.bench.scale import HDD_100G, HDD_1T, SSD_100G

CONFIGS = ("L", "R-1t", "R-4t", "A-1t", "A-4t", "I-1t", "I-4t")


def test_fig6_hash_load_throughput(benchmark):
    result = run_once(benchmark, lambda: exp_fig6(CONFIGS))
    rows = []
    norm_all = {}
    for setup_name, reports in result.items():
        tp = {c: r.throughput for c, r in reports.items()}
        norm = normalize_to("L", tp)
        norm_all[setup_name] = norm
        rows.append([setup_name, round(tp["L"], 0)] +
                    [round(norm[c], 2) for c in CONFIGS])
    table = format_table(["setup", "L ops/s"] + list(CONFIGS), rows,
                         title="Figure 6 (measured): hash-load throughput normalized to LevelDB")
    save_result("fig6", table)
    benchmark.extra_info["normalized"] = norm_all

    for setup in ("SSD-100G", "HDD-100G", "HDD-1T"):
        norm = norm_all[setup]
        # LSA loads fastest; IAM beats LevelDB (paper: 1.4-2.7x).
        assert norm["A-1t"] >= norm["I-1t"] > 1.1
        assert norm["A-1t"] > 1.5
    # Absolute LevelDB throughput ordering across setups (Fig. 6 footers).
    tps = {name: reports["L"].throughput for name, reports in result.items()}
    assert tps["SSD-100G"] > tps["HDD-100G"] > tps["HDD-1T"] * 0.8
