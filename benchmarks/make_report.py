#!/usr/bin/env python3
"""Assemble benchmarks/results/*.txt into one measured-results appendix.

Run after a benchmark sweep:

    pytest benchmarks/ --benchmark-only
    python benchmarks/make_report.py           # writes results/REPORT.md
"""

from __future__ import annotations

import datetime
import os
from pathlib import Path

RESULTS = Path(__file__).parent / "results"

ORDER = [
    ("table1", "Table 1 — amplifications"),
    ("table2", "Table 2 / §6.8 — append-tree characteristics"),
    ("table3", "Table 3 — IAM per-level WA vs k"),
    ("table4", "Table 4 — per-level WA, 1 TB hash load"),
    ("fig6", "Figure 6 — hash-load throughput"),
    ("fig7_SSD-100G", "Figure 7a — YCSB, SSD-100G"),
    ("fig7_HDD-100G", "Figure 7b — YCSB, HDD-100G"),
    ("fig7_HDD-1T", "Figure 7c — YCSB, HDD-1T"),
    ("fig8", "Figure 8 — stable throughput"),
    ("table5", "Table 5 — p99 latencies"),
    ("fig9", "Figure 9 — fillseq / readseq"),
    ("fig10", "Figure 10 — space usage"),
    ("load_latency", "§6.2 — load-latency tail"),
    ("ablation_model", "Ablation — Eq. 3/4 vs measured"),
    ("ablation_tuning", "Ablation — m/k tuner vs memory"),
    ("ablation_combine", "Ablation — combine candidate policy"),
    ("ablation_pinning", "Ablation — §5.1.3 forcible caching"),
]


def main() -> int:
    lines = [
        "# Measured results",
        "",
        f"Generated {datetime.datetime.now().isoformat(timespec='seconds')} "
        f"with REPRO_SCALE={os.environ.get('REPRO_SCALE', '1.0')}.",
        "",
    ]
    missing = []
    for stem, title in ORDER:
        path = RESULTS / f"{stem}.txt"
        lines.append(f"## {title}")
        lines.append("")
        if path.exists():
            lines.append("```text")
            lines.append(path.read_text().rstrip())
            lines.append("```")
        else:
            lines.append("*(missing — benchmark not run)*")
            missing.append(stem)
        lines.append("")
    out = RESULTS / "REPORT.md"
    out.write_text("\n".join(lines))
    print(f"wrote {out} ({len(ORDER) - len(missing)}/{len(ORDER)} sections)")
    if missing:
        print("missing:", ", ".join(missing))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
