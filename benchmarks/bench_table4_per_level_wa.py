"""Table 4: per-level WA after hash-loading 1 TB for every config.

Paper (HDD, 1 TB, WAL excluded):

    config  L0    L1    L2    L3    L4    L5    sum
    L       1.03  2.05  4.66  5.48  1.44  0     14.66
    R-1t    1.03  1.73  5.07  6.68  4.48  0.01  19.00
    R-4t    1.03  1.88  5.32  6.82  4.47  0.01  19.53
    A-1t    -     1.03  1.03  1.03  0.97  0.04   4.10
    A-4t    -     1.03  1.03  1.05  1.00  0.13   4.24
    I-1t    -     1.03  1.03  2.52  4.05  0.08   8.71
    I-4t    -     1.03  1.03  2.63  3.96  0.29   8.94

Shapes to reproduce: LSA levels all ~1; IAM appending levels ~1, a mixed
level in the middle, merging levels ~t/2; LSM-style engines several times
higher per deep level; totals ordered LSA < IAM < LSM-style.
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.harness import exp_table4
from repro.bench.report import format_table
from repro.bench.scale import HDD_1T

PAPER_TOTALS = {"L": 14.66, "R-1t": 19.00, "R-4t": 19.53, "A-1t": 4.10,
                "A-4t": 4.24, "I-1t": 8.71, "I-4t": 8.94}


def test_table4_per_level_wa(benchmark):
    result = run_once(benchmark, lambda: exp_table4(HDD_1T))
    levels = sorted({lvl for d in result.values() for lvl in d})
    rows = []
    totals = {}
    for config, d in result.items():
        total = sum(d.values())
        totals[config] = total
        rows.append([config] + [round(d.get(lvl, 0.0), 2) for lvl in levels]
                    + [round(total, 2), PAPER_TOTALS[config]])
    table = format_table(
        ["config"] + [f"L{lvl}" for lvl in levels] + ["sum", "paper sum"],
        rows, title="Table 4 (measured): per-level WA, 1 TB hash load, HDD")
    save_result("table4", table)
    benchmark.extra_info["totals"] = totals

    # Who-wins ordering (Table 1 / Table 4): LSA < IAM < LSM-style engines.
    assert totals["A-1t"] < totals["I-1t"] < min(totals["L"], totals["R-1t"])
    # LSA: every internal level costs ~1 (appends, Eq. 3).
    for lvl in (1, 2, 3):
        assert result["A-1t"].get(lvl, 1.0) == pytest.approx(1.05, abs=0.3)
    # IAM: appending levels ~1; deeper (mixed/merging) levels cost more.
    assert result["I-1t"].get(1, 1.0) == pytest.approx(1.05, abs=0.3)
    deep_iam = max(result["I-1t"].get(lvl, 0.0) for lvl in (3, 4))
    assert deep_iam > 1.4
    # Multi-threaded variants land near their single-threaded totals.
    assert totals["A-4t"] == pytest.approx(totals["A-1t"], rel=0.25)
    assert totals["I-4t"] == pytest.approx(totals["I-1t"], rel=0.25)
