"""Table 5: 99th-percentile latencies for query-intensive workloads.

Paper shape: IamDB (IAM) takes first or second place in nearly every cell;
LSA wins on point-read workloads but loses badly on scans (E/G); the HDD
latencies dwarf the SSD ones.

Built on the per-op-class log-linear histograms (``repro.metrics.latency``):
each cell's p99 is the histogram's nearest-rank bucket bound, windowed per
workload with :meth:`StabilityProbe.latency_since`, with the old recorder's
sample-interpolated p99 carried alongside -- the benchmark asserts the two
conventions agree to within 25%.  The slack is dominated not by the
histogram's ~3% bucket width but by the conventions themselves: with a few
hundred query samples per cell, the adjacent tail order statistics that
nearest-rank and linear interpolation land between can sit ~10% apart, so
the check guards against op-class/unit mistakes, not convention drift.
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.harness import exp_table5_hist
from repro.bench.report import format_table
from repro.bench.scale import HDD_100G, HDD_1T, SSD_100G

CONFIGS = ("L", "R-1t", "A-1t", "I-1t")
WORKLOADS = ("B", "C", "D", "E", "G")
SETUPS = (SSD_100G, HDD_100G, HDD_1T)


def _fmt(seconds: float) -> str:
    return f"{seconds * 1000:.3f}ms"


def _p99(result, w, c, setup_name) -> float:
    return result[w][c][setup_name].get("p99", 0.0)


def test_table5_tail_latency(benchmark):
    result = run_once(benchmark,
                      lambda: exp_table5_hist(SETUPS, WORKLOADS, CONFIGS))
    rows = []
    for w in WORKLOADS:
        for c in CONFIGS:
            rows.append([w, c] + [_fmt(_p99(result, w, c, s.name))
                                  for s in SETUPS])
    table = format_table(["workload", "config"] + [s.name for s in SETUPS],
                         rows, title="Table 5 (measured): p99 latency per workload/config")
    save_result("table5", table)
    benchmark.extra_info["p99"] = {
        w: {c: {s.name: _p99(result, w, c, s.name) for s in SETUPS}
            for c in CONFIGS} for w in WORKLOADS}

    for w in WORKLOADS:
        for c in CONFIGS:
            for s in SETUPS:
                cell = result[w][c][s.name]
                # Histogram p99 (nearest-rank bucket bound) tracks the
                # recorder's interpolated p99: same samples, so only the
                # bucket width plus the gap between the adjacent tail order
                # statistics the two conventions pick can separate them.
                if cell.get("p99_recorder", 0.0) > 0.0:
                    assert cell["p99"] == pytest.approx(
                        cell["p99_recorder"], rel=0.25)
                # Percentiles are monotone and capped by the observed max.
                assert cell["p50"] <= cell["p99"] <= cell["p999"] <= cell["max"]
            # HDD is far slower than SSD at the tail (seek-dominated reads).
            assert _p99(result, w, c, "HDD-100G") > _p99(result, w, c, "SSD-100G")
    # Scan workloads: IAM's tail beats LSA's everywhere (the paper's Table 5
    # shape -- LSA "usually much worse than the others", IAM competitive).
    for setup in ("SSD-100G", "HDD-100G", "HDD-1T"):
        for w in ("E", "G"):
            tails = {c: _p99(result, w, c, setup) for c in CONFIGS}
            assert tails["A-1t"] > tails["I-1t"]
            # IAM within a workable factor of the LSM baselines (our device
            # model compresses cross-engine p99 contrast under pure-read
            # load; see EXPERIMENTS.md deviations).
            assert tails["I-1t"] < 3.0 * tails["L"]
    # Point-read workloads: all engines' p99 within a tight band (one seek).
    for w in ("B", "C"):
        for setup in ("HDD-100G",):
            tails = [_p99(result, w, c, setup) for c in CONFIGS]
            assert max(tails) < 2.0 * min(tails)
