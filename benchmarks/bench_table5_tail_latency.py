"""Table 5: 99th-percentile latencies for query-intensive workloads.

Paper shape: IamDB (IAM) takes first or second place in nearly every cell;
LSA wins on point-read workloads but loses badly on scans (E/G); the HDD
latencies dwarf the SSD ones.
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.harness import exp_table5
from repro.bench.report import format_table
from repro.bench.scale import HDD_100G, HDD_1T, SSD_100G

CONFIGS = ("L", "R-1t", "A-1t", "I-1t")
WORKLOADS = ("B", "C", "D", "E", "G")
SETUPS = (SSD_100G, HDD_100G, HDD_1T)


def _fmt(seconds: float) -> str:
    return f"{seconds * 1000:.3f}ms"


def test_table5_tail_latency(benchmark):
    result = run_once(benchmark, lambda: exp_table5(SETUPS, WORKLOADS, CONFIGS))
    rows = []
    for w in WORKLOADS:
        for c in CONFIGS:
            cell = result[w][c]
            rows.append([w, c] + [_fmt(cell[s.name]) for s in SETUPS])
    table = format_table(["workload", "config"] + [s.name for s in SETUPS],
                         rows, title="Table 5 (measured): p99 latency per workload/config")
    save_result("table5", table)
    benchmark.extra_info["p99"] = {
        w: {c: result[w][c] for c in CONFIGS} for w in WORKLOADS}

    for w in WORKLOADS:
        for c in CONFIGS:
            # HDD is far slower than SSD at the tail (seek-dominated reads).
            assert result[w][c]["HDD-100G"] > result[w][c]["SSD-100G"]
    # Scan workloads: IAM's tail beats LSA's everywhere (the paper's Table 5
    # shape -- LSA "usually much worse than the others", IAM competitive).
    for setup in ("SSD-100G", "HDD-100G", "HDD-1T"):
        for w in ("E", "G"):
            tails = {c: result[w][c][setup] for c in CONFIGS}
            assert tails["A-1t"] > tails["I-1t"]
            # IAM within a workable factor of the LSM baselines (our device
            # model compresses cross-engine p99 contrast under pure-read
            # load; see EXPERIMENTS.md deviations).
            assert tails["I-1t"] < 3.0 * tails["L"]
    # Point-read workloads: all engines' p99 within a tight band (one seek).
    for w in ("B", "C"):
        for setup in ("HDD-100G",):
            tails = [result[w][c][setup] for c in CONFIGS]
            assert max(tails) < 2.0 * min(tails)
