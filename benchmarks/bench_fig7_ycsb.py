"""Figure 7 (a/b/c): YCSB A-G throughput normalized to LevelDB.

Paper shapes per setup:

* Write-intensive A/F: LSA and IAM beat LevelDB clearly on SSD; on HDD the
  random-read bottleneck compresses every tree toward parity.
* Read-intensive B/C/D: roughly comparable; IamDB never collapses.
* Scans: LSA suffers on E (its multi-sequence read amplification); IAM stays
  near LevelDB.
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.harness import clear_cache, exp_fig7
from repro.bench.report import format_table, normalize_to
from repro.bench.scale import HDD_100G, HDD_1T, SSD_100G

CONFIGS = ("L", "R-1t", "A-1t", "I-1t")
WORKLOADS = ("A", "B", "C", "D", "E", "F", "G")


def _run_setup(setup):
    result = exp_fig7(setup, WORKLOADS, CONFIGS)
    norm = {}
    for w, reports in result.items():
        tp = {c: r.throughput for c, r in reports.items()}
        norm[w] = normalize_to("L", tp)
        norm[w]["_L_abs"] = tp["L"]
    return norm


@pytest.mark.parametrize("setup", [SSD_100G, HDD_100G, HDD_1T],
                         ids=["SSD-100G", "HDD-100G", "HDD-1T"])
def test_fig7_ycsb(benchmark, setup):
    norm = run_once(benchmark, lambda: _run_setup(setup))
    rows = [[w, round(norm[w]["_L_abs"], 0)] +
            [round(norm[w][c], 2) for c in CONFIGS] for w in WORKLOADS]
    table = format_table(["workload", "L ops/s"] + list(CONFIGS), rows,
                         title=f"Figure 7 (measured): YCSB on {setup.name}, normalized to L")
    save_result(f"fig7_{setup.name}", table)
    benchmark.extra_info["normalized"] = norm

    # Write-intensive workloads: IAM/LSA at least hold their own vs LevelDB.
    for w in ("A", "F"):
        assert norm[w]["I-1t"] > 0.8
        assert norm[w]["A-1t"] > 0.8
    # Read-only workload C: all engines within a sane band of LevelDB
    # (paper: "the read performances of IAM and LSM are almost the same").
    assert 0.6 < norm["C"]["I-1t"] < 2.5
    # Short scans (E): LSA pays its multi-sequence penalty vs IAM.
    assert norm["E"]["A-1t"] <= norm["E"]["I-1t"] + 0.05
