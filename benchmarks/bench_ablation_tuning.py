"""Ablation: the m/k tuner across memory sizes (extends Table 3 / §5.1.3).

More memory -> higher mixed level and/or larger k -> smaller write
amplification; the tuner should move monotonically with the cache size.
"""

import dataclasses

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.report import format_table
from repro.bench.scale import KEY_SIZE, SSD_100G, ScaledSetup
from repro.common.options import IamOptions, StorageOptions
from repro.db.iamdb import IamDB
from repro.workloads import hash_load


def _measure():
    out = {}
    n = SSD_100G.n_records
    for mem_factor in (0.25, 1.0, 4.0):
        mem = int(SSD_100G.memory_bytes * mem_factor)
        db = IamDB("iam",
                   engine_options=IamOptions(key_size=KEY_SIZE),
                   storage_options=StorageOptions(device=SSD_100G.device,
                                                  page_cache_bytes=mem))
        hash_load(db, n, quiesce=False)
        out[mem_factor] = {
            "memory_mb": mem / 1e6,
            "m": db.engine.m,
            "k": db.engine.k,
            "wa": db.write_amplification(),
        }
        db.close()
    return out


def test_tuner_tracks_memory(benchmark):
    out = run_once(benchmark, _measure)
    rows = [[f, round(d["memory_mb"], 2), d["m"], d["k"], round(d["wa"], 2)]
            for f, d in sorted(out.items())]
    table = format_table(["mem x", "memory MB", "m", "k", "WA"], rows,
                         title="Ablation (measured): m/k tuning vs memory size")
    save_result("ablation_tuning", table)
    benchmark.extra_info["results"] = out

    small, base, big = out[0.25], out[1.0], out[4.0]
    # (m, k) grows lexicographically with memory.
    assert (big["m"], big["k"]) >= (base["m"], base["k"]) >= (small["m"], small["k"])
    # ... and write amplification falls.
    assert big["wa"] <= base["wa"] + 0.05
    assert base["wa"] <= small["wa"] + 0.05
