"""Figure 8: stable throughputs of query-intensive workloads (100 GB, SSD).

"Stable" = measured after all compaction debt is drained (the tuning phase
has completed), which is the state most favourable to the LSM baselines.
Paper shape: B/C/D roughly at parity; E collapses for LSA (~2.9x worse) and
matches LevelDB for IAM; G close to parity with a mild LSA deficit.
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.harness import exp_fig8
from repro.bench.report import format_table, normalize_to
from repro.bench.scale import SSD_100G

CONFIGS = ("L", "R-1t", "A-1t", "I-1t")
WORKLOADS = ("B", "C", "D", "E", "G")


def test_fig8_stable_throughput(benchmark):
    result = run_once(benchmark, lambda: exp_fig8(SSD_100G, WORKLOADS, CONFIGS))
    norm = {}
    rows = []
    for w in WORKLOADS:
        tp = {c: r.throughput for c, r in result[w].items()}
        norm[w] = normalize_to("L", tp)
        rows.append([w, round(tp["L"], 0)] + [round(norm[w][c], 2) for c in CONFIGS])
    table = format_table(["workload", "L ops/s"] + list(CONFIGS), rows,
                         title="Figure 8 (measured): stable throughput, SSD-100G, normalized to L")
    save_result("fig8", table)
    benchmark.extra_info["normalized"] = norm

    # Stable read throughputs are nearly the same (paper §6.4).
    for w in ("B", "C"):
        assert 0.6 < norm[w]["I-1t"] < 1.8
        assert 0.6 < norm[w]["A-1t"] < 1.8
    # Short scans: LSA clearly behind IAM (paper: 2.9x worse than LevelDB).
    assert norm["E"]["A-1t"] < 0.9 * norm["E"]["I-1t"]
    # IAM stays within a workable band of LevelDB on scans.  (Paper: parity;
    # our LRU does not give appended sequences the cache preference the
    # paper's hot/cold access pattern produces, so IAM pays a bit more --
    # see EXPERIMENTS.md deviations.)
    assert norm["E"]["I-1t"] > 0.45
