"""Figure 8: stable throughputs of query-intensive workloads (100 GB, SSD).

"Stable" = measured after all compaction debt is drained (the tuning phase
has completed), which is the state most favourable to the LSM baselines.
Paper shape: B/C/D roughly at parity; E collapses for LSA (~2.9x worse) and
matches LevelDB for IAM; G close to parity with a mild LSA deficit.

Built on the stability primitives (``repro.obs.stability``): each cell is a
windowed digest whose duration-weighted ``mean_ops_s`` replaces the old
scalar ``WorkloadReport.throughput`` -- the two are equal by construction,
and this benchmark asserts it -- plus ``cv``/``min_window_ops_s``, which
quantify the figure's actual subject (how *stable* "stable" is).
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.harness import exp_fig8_stability
from repro.bench.report import format_table, normalize_to
from repro.bench.scale import SSD_100G

CONFIGS = ("L", "R-1t", "A-1t", "I-1t")
WORKLOADS = ("B", "C", "D", "E", "G")


def test_fig8_stable_throughput(benchmark):
    result = run_once(benchmark,
                      lambda: exp_fig8_stability(SSD_100G, WORKLOADS, CONFIGS))
    norm = {}
    rows = []
    for w in WORKLOADS:
        tp = {c: result[w][c]["mean_ops_s"] for c in CONFIGS}
        norm[w] = normalize_to("L", tp)
        rows.append([w, round(tp["L"], 0)]
                    + [round(norm[w][c], 2) for c in CONFIGS]
                    + [round(result[w][c]["cv"], 3) for c in CONFIGS])
    table = format_table(
        ["workload", "L ops/s"] + list(CONFIGS)
        + [f"cv {c}" for c in CONFIGS],
        rows,
        title="Figure 8 (measured): stable throughput, SSD-100G, normalized to L")
    save_result("fig8", table)
    benchmark.extra_info["normalized"] = norm

    for w in WORKLOADS:
        for c in CONFIGS:
            cell = result[w][c]
            # The windowed mean is the global rate, exactly: the duration-
            # weighted mean of per-window rates telescopes to ops / time.
            assert cell["mean_ops_s"] == pytest.approx(cell["ops_per_s"],
                                                       rel=1e-9)
            # Every window saw progress, and the worst one is a real rate.
            assert 0.0 <= cell["min_window_ops_s"] <= cell["mean_ops_s"] + 1e-9
            # Post-tuning "stable" state: write stalls cannot dominate a
            # query-intensive phase (D inserts a little; E/G scan).
            assert cell["stall_fraction"] < 0.5

    # Stable read throughputs are nearly the same (paper §6.4).
    for w in ("B", "C"):
        assert 0.6 < norm[w]["I-1t"] < 1.8
        assert 0.6 < norm[w]["A-1t"] < 1.8
    # Short scans: LSA clearly behind IAM (paper: 2.9x worse than LevelDB).
    assert norm["E"]["A-1t"] < 0.9 * norm["E"]["I-1t"]
    # IAM stays within a workable band of LevelDB on scans.  (Paper: parity;
    # our LRU does not give appended sequences the cache preference the
    # paper's hot/cold access pattern produces, so IAM pays a bit more --
    # see EXPERIMENTS.md deviations.)
    assert norm["E"]["I-1t"] > 0.45
