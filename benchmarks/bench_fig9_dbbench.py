"""Figure 9: db_bench fillseq and readseq (100 GB, SSD and HDD).

Paper shapes: fillseq throughputs of LevelDB and IamDB are nearly the same
(everything is written twice: log + one flush); readseq is
bandwidth-bound and similar across trees, with IAM best.
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.harness import exp_fig9
from repro.bench.report import format_table, normalize_to
from repro.bench.scale import HDD_100G, SSD_100G

CONFIGS = ("L", "R-1t", "A-1t", "I-1t")


def test_fig9_dbbench(benchmark):
    result = run_once(benchmark, lambda: exp_fig9((SSD_100G, HDD_100G), CONFIGS))
    rows = []
    norm_out = {}
    for test_name in ("fillseq", "readseq"):
        for setup_name, tp in result[test_name].items():
            norm = normalize_to("L", tp)
            norm_out[f"{test_name}-{setup_name}"] = norm
            rows.append([f"{test_name}-{setup_name}", round(tp["L"], 0)]
                        + [round(norm[c], 2) for c in CONFIGS])
    table = format_table(["test", "L ops/s"] + list(CONFIGS), rows,
                         title="Figure 9 (measured): fillseq/readseq, normalized to L")
    save_result("fig9", table)
    benchmark.extra_info["normalized"] = norm_out

    # fillseq: all trees write data to disk twice -> near-parity (§6.6).
    for setup in ("SSD-100G", "HDD-100G"):
        n = norm_out[f"fillseq-{setup}"]
        for c in CONFIGS:
            assert n[c] == pytest.approx(1.0, rel=0.45)
    # readseq: sequential-scan bandwidth comparable across trees.
    for setup in ("SSD-100G", "HDD-100G"):
        n = norm_out[f"readseq-{setup}"]
        assert n["I-1t"] == pytest.approx(1.0, rel=0.5)
        assert n["A-1t"] == pytest.approx(1.0, rel=0.6)
