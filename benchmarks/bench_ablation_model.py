"""Ablation: measured write amplification vs the closed-form model (§5.3).

Checks that Eq. (3)/(4) predict the measured totals within a loose band and
that the split term (Eq. 5) is indeed negligible at t = 10.
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.analysis import (
    iam_write_amplification,
    lsa_write_amplification,
    split_write_amplification,
)
from repro.bench.report import format_table
from repro.bench.scale import SSD_100G, make_db
from repro.workloads import hash_load


def _measure():
    out = {}
    for config in ("A-1t", "I-1t"):
        db = make_db(config, SSD_100G)
        hash_load(db, SSD_100G.n_records, quiesce=False)
        eng = db.engine
        out[config] = {
            "measured": db.write_amplification(),
            "n": eng.n,
            "m": eng.m,
            "k": eng.k,
            "splits": eng.splits,
        }
        db.close()
    return out


def test_model_vs_measured(benchmark):
    out = run_once(benchmark, _measure)
    rows = []
    for config, d in out.items():
        if config.startswith("A"):
            model = lsa_write_amplification(d["n"])
        else:
            model = iam_write_amplification(d["n"], d["m"], d["k"])
        d["model"] = model
        rows.append([config, d["n"], d["m"], d["k"],
                     round(d["measured"], 2), round(model, 2)])
    table = format_table(["config", "n", "m", "k", "measured WA", "Eq.(3)/(4)"],
                         rows, title="Ablation (measured vs model): write amplification")
    save_result("ablation_model", table)
    benchmark.extra_info["results"] = out

    lsa, iam = out["A-1t"], out["I-1t"]
    # Eq. (3): LSA ~ n (leaf merges and metadata add slack either way).
    assert lsa["measured"] == pytest.approx(lsa["model"], rel=0.35)
    # Eq. (4) upper-bounds measured IAM WA at steady state reasonably: the
    # mixed/merging surcharge only applies once data actually reaches those
    # levels, so measured <= model + slack and > the LSA prediction.
    assert lsa["model"] * 0.8 < iam["measured"] < iam["model"] * 1.3
    # Eq. (5): the split term is tiny for t = 10.
    assert split_write_amplification(lsa["n"]) < 0.5
