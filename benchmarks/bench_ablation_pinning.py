"""Ablation: §5.1.3 forcible caching of appended sequences.

"If all appended sequences are forcibly cached, a scan takes at most one
disk seek for a node in each level."  Compares IAM with and without pinning
on the short-scan workload (E): pinning should cut scan seeks per operation
toward the LSM level, at the cost of cache capacity for everything else.
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.report import format_table
from repro.bench.scale import HDD_100G, KEY_SIZE
from repro.common.options import IamOptions
from repro.db.iamdb import IamDB
from repro.workloads import hash_load, run_ycsb
from repro.workloads.ycsb import YCSB_WORKLOADS


def _measure():
    out = {}
    n = HDD_100G.n_records
    for label, pin in (("plain", False), ("pinned", True)):
        db = IamDB("iam",
                   engine_options=IamOptions(key_size=KEY_SIZE,
                                             pin_appended_sequences=pin),
                   storage_options=HDD_100G.storage_options())
        hash_load(db, n, quiesce=False)
        db.quiesce()
        seeks0 = db.metrics.query_seeks
        scans0 = db.metrics.latency["scan"].count
        rep = run_ycsb(db, YCSB_WORKLOADS["E"], 400, n)
        n_scans = db.metrics.latency["scan"].count - scans0
        out[label] = {
            "seeks_per_scan": (db.metrics.query_seeks - seeks0) / max(1, n_scans),
            "scan_p99_ms": rep.latency.get("scan", {}).get("p99", 0.0) * 1e3,
            "throughput": rep.throughput,
            "pinned_blocks": db.runtime.cache.pinned_blocks(),
        }
        db.close()
    return out


def test_pinning_reduces_scan_seeks(benchmark):
    out = run_once(benchmark, _measure)
    rows = [[k, round(d["seeks_per_scan"], 2), round(d["scan_p99_ms"], 3),
             round(d["throughput"], 0), d["pinned_blocks"]]
            for k, d in out.items()]
    table = format_table(
        ["config", "seeks/scan", "scan p99 ms", "ops/s", "pinned blocks"],
        rows, title="Ablation (measured): forcible caching of appended sequences")
    save_result("ablation_pinning", table)
    benchmark.extra_info["results"] = out

    assert out["pinned"]["pinned_blocks"] > 0
    assert out["pinned"]["seeks_per_scan"] <= out["plain"]["seeks_per_scan"]
    assert out["pinned"]["scan_p99_ms"] <= out["plain"]["scan_p99_ms"] * 1.05
