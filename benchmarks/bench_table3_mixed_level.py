"""Table 3: per-level write amplification of IAM vs the mixed-level k.

Paper values (hash-loading 100 GB, L3 mixed):

    k=1: 1.03 1.04 3.88 0.23  -> total 6.18
    k=2: 1.03 1.04 2.41 0.23  -> total 4.70
    k=3: 1.03 1.05 1.90 0.20  -> total 4.17

The shape to reproduce: levels above the mixed level cost ~1, the mixed
level's cost shrinks as k grows (t/2k + 1), totals decrease monotonically.
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.harness import exp_table3
from repro.bench.report import format_table
from repro.bench.scale import HDD_100G

PAPER = {1: 6.18, 2: 4.70, 3: 4.17}


def test_table3_mixed_level_k(benchmark):
    result = run_once(benchmark, lambda: exp_table3(HDD_100G, ks=(1, 2, 3), m=3))
    levels = sorted({lvl for d in result.values() for lvl in d})
    rows = []
    totals = {}
    for k, d in sorted(result.items()):
        total = sum(d.values())
        totals[k] = total
        rows.append([f"k={k}"] + [round(d.get(lvl, 0.0), 2) for lvl in levels]
                    + [round(total, 2), PAPER[k]])
    table = format_table(
        ["config"] + [f"L{lvl}" for lvl in levels] + ["total", "paper total"],
        rows, title="Table 3 (measured): IAM per-level WA after hash load, m=3")
    save_result("table3", table)
    benchmark.extra_info["totals"] = totals

    # Shape assertions: higher k => lower write amplification.
    assert totals[3] < totals[2] < totals[1]
    # Appending levels cost ~1 regardless of k.
    for k, d in result.items():
        for lvl in (1, 2):
            assert d.get(lvl, 1.0) == pytest.approx(1.05, abs=0.25)
    # The mixed level (3) is where k bites.
    assert result[1].get(3, 0) > result[3].get(3, 0)
