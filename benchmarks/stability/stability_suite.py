"""Standalone entry point for the stability suite.

Thin shim over :mod:`repro.bench.stability` -- same flags as
``python -m repro stability`` (``--quick``, ``--check``, ``--update``,
``--engine``, ``--trace``, ...).  Run with ``PYTHONPATH=src``.
"""

if __name__ == "__main__":
    import sys

    try:
        from repro.bench.stability import main
    except ImportError:
        print("run with PYTHONPATH=src (repro package not importable)",
              file=sys.stderr)
        sys.exit(2)
    sys.exit(main(sys.argv[1:]))
