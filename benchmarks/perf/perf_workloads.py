"""Key-generation microbenchmark: vectorized chunks vs scalar generators.

Times ``permute64_many`` against per-key ``permute64``, and the chunked
zipfian / scrambled-zipfian ``sample_many`` against scalar ``sample`` loops
(identical RNG streams, so outputs match element for element).
"""

if __name__ == "__main__":
    import sys

    from _harness import run_standalone

    sys.exit(run_standalone(["workloads"], __doc__))
