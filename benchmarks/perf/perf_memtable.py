"""Memtable bulk-load microbenchmark: two-tier index vs seed bisect.insort.

Measures a shuffled-unique-keys load through three paths: the frozen
ReferenceMemtable (per-record ``bisect.insort``), the optimized per-record
``add()``, and the bulk ``add_many()`` -- each followed by
``sorted_records()`` so lazy consolidation is paid inside the timing.
"""

if __name__ == "__main__":
    import sys

    from _harness import run_standalone

    sys.exit(run_standalone(["memtable"], __doc__))
