"""Shared runner for the standalone ``perf_*.py`` entry points.

Thin shim over :mod:`repro.bench.perf`: parses ``--quick``/``--json``,
runs the requested suites and prints the table (or the raw report JSON).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence


def run_standalone(suites: Sequence[str], description: str) -> int:
    p = argparse.ArgumentParser(description=description)
    p.add_argument("--quick", action="store_true",
                   help="smaller problem sizes (not comparable to baselines)")
    p.add_argument("--json", action="store_true",
                   help="print the raw report JSON instead of the table")
    args = p.parse_args()
    try:
        from repro.bench.perf import format_report, run_suite
    except ImportError:
        print("run with PYTHONPATH=src (repro package not importable)",
              file=sys.stderr)
        return 2
    report = run_suite(suites, quick=args.quick)
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(format_report(report))
    return 0
