"""Merge-kernel microbenchmark: tiered merge_runs vs the seed heapq path.

Covers the 2-way pairwise fast path, the 5-way heap path, and the
snapshot-retention path, each against the frozen reference merge.
"""

if __name__ == "__main__":
    import sys

    from _harness import run_standalone

    sys.exit(run_standalone(["merge"], __doc__))
