"""Hot-path microbenchmarks: optimized kernels vs their frozen seed copies.

Each ``perf_*.py`` here is a standalone entry point for one kernel family;
the timing logic lives in :mod:`repro.bench.perf` so the same suite also
backs ``python -m repro perf`` (which can ``--update`` / ``--check`` the
committed ``BENCH_perf.json``).  Run one family with e.g.::

    PYTHONPATH=src python benchmarks/perf/perf_memtable.py [--quick]
"""
