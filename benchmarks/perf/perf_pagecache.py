"""Page-cache microbenchmark: batch insert_range/touch_range vs per-block.

Drives repeated whole-file admissions through the batch APIs and the frozen
per-block reference cache, plus the all-hits ``touch_range`` path.
"""

if __name__ == "__main__":
    import sys

    from _harness import run_standalone

    sys.exit(run_standalone(["pagecache"], __doc__))
