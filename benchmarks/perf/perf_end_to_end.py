"""End-to-end perf probe: wall-clock of one scaled hash load (I-1t, SSD-100G).

This is the regression canary CI compares against the committed
``BENCH_perf.json`` -- full scale by default so the numbers are comparable
to the baseline; ``--quick`` quarters the record count for smoke runs.
"""

if __name__ == "__main__":
    import sys

    from _harness import run_standalone

    sys.exit(run_standalone(["end_to_end"], __doc__))
