"""Batched read-path microbenchmarks: vectorized kernels vs scalar walks.

Three comparisons, each proven result- and sim-clock-identical inline
before timing:

* ``multi_get`` -- the two-phase planned batch lookup against the frozen
  per-key memtable/engine walk (``reference_multi_get``);
* ``scan`` -- the vectorized plan/replay assembler against the frozen
  generator heap merge (``reference_scan``) on a version- and
  tombstone-heavy leveled store;
* cluster fan-out -- one scatter-gather ``multi_get`` RPC batch against
  per-key routed reads (``reference_cluster_read_loop``).
"""

if __name__ == "__main__":
    import sys

    from _harness import run_standalone

    sys.exit(run_standalone(["reads"], __doc__))
