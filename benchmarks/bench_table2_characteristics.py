"""Table 2 + §6.8: characteristics of trees with appends.

* worst write case avoided: LSA/IAM bound flush fan-out near 2t; FLSM's
  guard fan-in is unbounded by design.
* good sequential writes: LSA/IAM/LSM load ordered data with WA ~ 1
  (metadata-only moves); FLSM rewrites at every level (paper: WA 6.42,
  ~6.7x fewer IOPS than LevelDB).
* scan support: all engines here support scans (LSM-trie, which does not,
  has no analogue worth building: it is hash-based).
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.harness import exp_flsm_seqwrite
from repro.bench.report import format_table
from repro.bench.scale import SSD_100G, make_db
from repro.workloads import hash_load


def _measure():
    from repro.bench.scale import KEY_SIZE
    from repro.common.options import LsaOptions
    from repro.db.iamdb import IamDB
    from repro.lsm.lsmtrie import TRIE_FANOUT
    from repro.workloads import fill_seq

    out = {}
    # Sequential-write behaviour (§6.8) -- including the LSM-trie row of
    # Table 2 (hashing scatters ordered input, so no move-down fast path).
    seq = exp_flsm_seqwrite(SSD_100G)
    trie = IamDB("lsmtrie", engine_options=LsaOptions(key_size=KEY_SIZE),
                 storage_options=SSD_100G.storage_options())
    seq["lsmtrie"] = fill_seq(trie, SSD_100G.n_records, quiesce=False)
    out["trie_max_children"] = trie.engine.max_children()
    out["trie_fanout_bound"] = TRIE_FANOUT
    trie.close()
    out["seq"] = {name: {"wa": rep.write_amplification,
                         "ops_per_s": rep.throughput}
                  for name, rep in seq.items()}
    # Worst-write-case avoidance under a skewless hash load.
    db = make_db("A-1t", SSD_100G)
    hash_load(db, SSD_100G.n_records // 2, quiesce=False)
    out["lsa_max_flush_fanout"] = db.engine.max_flush_fanout
    out["lsa_fanout_t"] = db.engine.options.fanout
    db.close()
    return out


def test_table2_characteristics(benchmark):
    out = run_once(benchmark, _measure)
    seq = out["seq"]
    rows = [[name, d["wa"], d["ops_per_s"]] for name, d in seq.items()]
    table = format_table(["engine", "seq-load WA", "seq-load ops/s"], rows,
                         title="Table 2 / §6.8 (measured): sequential writes")
    table += (f"\nLSA max flush fan-out: {out['lsa_max_flush_fanout']} "
              f"(bound 2t = {2 * out['lsa_fanout_t']})")
    table += (f"\nLSM-trie max children: {out['trie_max_children']} "
              f"(fixed fan-out = {out['trie_fanout_bound']})")
    save_result("table2", table)
    benchmark.extra_info.update(out)

    # Worst write case avoided: flush fan-out stays within the split bound
    # (LSA, §4.2.2) / the fixed trie fan-out (LSM-trie, by construction).
    assert out["lsa_max_flush_fanout"] <= 2 * out["lsa_fanout_t"] + 2
    assert out["trie_max_children"] <= out["trie_fanout_bound"]
    # Good sequential writes: LSA/IAM/LSM near WA 1; FLSM rewrites per level;
    # LSM-trie gains nothing from ordered input (hash placement, Table 2).
    for good in ("lsa", "iam", "leveldb"):
        assert seq[good]["wa"] < 1.5
    assert seq["flsm"]["wa"] > 2.5
    assert seq["lsmtrie"]["wa"] > 1.5
    # FLSM sequential load is several times slower (paper: 6.7x vs LevelDB).
    assert seq["flsm"]["ops_per_s"] < seq["leveldb"]["ops_per_s"] / 1.5


def test_scan_support_all_engines(benchmark):
    def scan_all():
        out = {}
        for engine_cfg in ("L", "A-1t", "I-1t"):
            db = make_db(engine_cfg, SSD_100G)
            hash_load(db, 5000, quiesce=False)
            rows = db.scan(None, None, limit=500)
            out[engine_cfg] = len(rows)
            db.close()
        return out

    counts = run_once(benchmark, scan_all)
    assert all(v == 500 for v in counts.values())
