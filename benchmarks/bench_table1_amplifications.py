"""Table 1: qualitative write / scan-read / space amplification.

Measures all three amplifications on a common scaled workload and checks the
orderings the paper's Table 1 asserts:

* write amplification:  LSA < IAM < LSM
* scan read amplification (seeks/scan): LSA >> IAM ~ LSM
* space amplification under updates: LSA > IAM ~ LSM
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.report import format_table
from repro.bench.scale import SSD_100G, make_db
from repro.workloads import hash_load, overwrite, run_ycsb
from repro.workloads.ycsb import YCSB_WORKLOADS


def _measure():
    rows = {}
    n = SSD_100G.n_records
    for config, label in (("L", "lsm"), ("A-1t", "lsa"), ("I-1t", "iam")):
        db = make_db(config, SSD_100G)
        hash_load(db, n, quiesce=False)
        wa = db.write_amplification()
        # Scan read amplification: seeks per short scan (workload-E-style).
        seeks0 = db.metrics.query_seeks
        scans0 = db.metrics.latency["scan"].count
        run_ycsb(db, YCSB_WORKLOADS["E"], 300, n)
        scans = db.metrics.latency["scan"].count - scans0
        ra = (db.metrics.query_seeks - seeks0) / max(1, scans)
        # Space amplification: overwrite half the data, measure footprint.
        logical = db.metrics.user_bytes  # load bytes ~ logical size
        overwrite(db, n // 2, n, quiesce=False)
        sa = db.space_used_bytes() / logical
        rows[label] = {"write": wa, "read_scan": ra, "space": sa}
        db.close()
    return rows


def test_table1_amplifications(benchmark):
    rows = run_once(benchmark, _measure)
    table = format_table(
        ["tree", "write amp", "scan seeks/op", "space amp"],
        [[k, v["write"], v["read_scan"], v["space"]] for k, v in rows.items()],
        title="Table 1 (measured): amplifications of LSM vs LSA vs IAM",
    )
    save_result("table1", table)
    benchmark.extra_info["rows"] = rows
    # Paper's qualitative orderings.
    assert rows["lsa"]["write"] < rows["iam"]["write"] < rows["lsm"]["write"]
    assert rows["lsa"]["read_scan"] > 1.5 * rows["iam"]["read_scan"]
    assert rows["lsa"]["space"] > rows["iam"]["space"]
    assert rows["iam"]["space"] < 1.35 * rows["lsm"]["space"]
