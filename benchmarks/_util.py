"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper (see DESIGN.md's
per-experiment index), prints it, and saves it under ``benchmarks/results/``
so EXPERIMENTS.md can quote actual output.  Benchmarks run once per session
(``pedantic(rounds=1)``): the interesting measurements are simulated-clock
quantities recorded in ``extra_info``, not wall time.

Scale with ``REPRO_SCALE`` (default 1.0 = the scaled paper datasets;
0.25 for a quick pass).
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
