"""§6.2 tail latency during loads.

Paper: LevelDB has enormous maximum latencies (stalls/bursts) but decent
p99; RocksDB's stall control bounds the maximum; LSA achieves the best p99
with a bounded max; IAM falls in between LevelDB and RocksDB.
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.harness import exp_load_latency
from repro.bench.report import format_table
from repro.bench.scale import SSD_100G

CONFIGS = ("L", "R-1t", "A-1t", "I-1t")


def test_load_tail_latency(benchmark):
    result = run_once(benchmark, lambda: exp_load_latency(SSD_100G, CONFIGS))
    rows = [[c, f"{d['mean'] * 1e6:.2f}us", f"{d['p99'] * 1e6:.2f}us",
             f"{d['max'] * 1e3:.3f}ms"] for c, d in result.items()]
    table = format_table(["config", "mean", "p99", "max"], rows,
                         title="§6.2 (measured): insert-latency tail during SSD-100G hash load")
    save_result("load_latency", table)
    benchmark.extra_info["latency"] = result

    # LSA has the best p99 of all (paper: 0.31 ms vs LevelDB's 1.48 ms).
    assert result["A-1t"]["p99"] <= min(d["p99"] for d in result.values()) * 1.01
    # LevelDB's max latency dwarfs its own p99 (bursts & stalls).
    assert result["L"]["max"] > 20 * result["L"]["p99"]
    # IAM's p99 beats LevelDB's.
    assert result["I-1t"]["p99"] <= result["L"]["p99"]
