"""Figure 10: space usage of write tests (100 GB in SSD).

Paper shapes: fillseq == hash-load for every tree (no updates); under
fillrandom and especially overwrite, LSA's footprint balloons (no merges
to drop outdated records: +25.8% and 2.3x), while IAM stays at LSM's level
or below.
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.harness import exp_fig10
from repro.bench.report import format_table
from repro.bench.scale import SSD_100G

CONFIGS = ("L", "R-1t", "A-1t", "I-1t")
TESTS = ("fillseq", "hash-load", "fillrandom", "overwrite")


def test_fig10_space_usage(benchmark):
    result = run_once(benchmark, lambda: exp_fig10(SSD_100G, CONFIGS))
    rows = []
    for test_name in TESTS:
        rows.append([test_name] + [round(result[test_name][c] / 1e6, 3)
                                   for c in CONFIGS])
    table = format_table(["test"] + [f"{c} (MB)" for c in CONFIGS], rows,
                         title="Figure 10 (measured): space usage of write tests")
    save_result("fig10", table)
    benchmark.extra_info["space"] = result

    # No-update loads: every tree's footprint is ~the dataset size; fillseq
    # and hash-load are close for each tree.
    for c in CONFIGS:
        assert result["fillseq"][c] == pytest.approx(result["hash-load"][c],
                                                     rel=0.30)
    # Overwrite: LSA takes much more space than IAM (paper: 2.3x more; the
    # scaled two-pass overwrite shows the same direction at a smaller factor).
    assert result["overwrite"]["A-1t"] > 1.25 * result["overwrite"]["I-1t"]
    # IAM's footprint stays at (or below) the LSM baselines' level.
    assert result["overwrite"]["I-1t"] <= 1.2 * result["overwrite"]["L"]
    assert result["fillrandom"]["A-1t"] >= result["fillrandom"]["I-1t"]
