"""Ablation: the Tcn-based combine-candidate policy (§4.2.3).

The paper argues the combined node must be picked by the smallest covered-
children count Tcn <= 3t, or neighbours grow fast and split repeatedly.
Compares the Tcn policy against a worst-pick policy (largest Tcn) on the
same load and reports splits and write amplification.
"""

import pytest

from benchmarks._util import run_once, save_result
from repro.bench.report import format_table
from repro.bench.scale import KEY_SIZE, SSD_100G
from repro.common.options import IamOptions
from repro.core.lsa import LsaTree
from repro.core.node import children_slice
from repro.db.iamdb import IamDB
from repro.workloads import hash_load


class _WorstPickTree(LsaTree):
    """Adversarial combine policy: always destroy the widest-covered node."""

    def _combine_one(self, level: int) -> float:
        lst = self.levels[level]
        if len(lst) < 3:
            return super()._combine_one(level)
        kids = self.levels[level + 1]
        worst = None
        for idx in range(1, len(lst) - 1):
            i0, _ = children_slice(lst, kids, idx - 1)
            _, j1 = children_slice(lst, kids, idx + 1)
            tcn = j1 - i0
            if worst is None or tcn > worst[0]:
                worst = (tcn, idx)
        self.combines += 1
        self.runtime.metrics.bump("combine")
        return self._flush_node(level, lst[worst[1]], destroy=True)


def _measure():
    n = SSD_100G.n_records
    out = {}
    for label in ("tcn-policy", "worst-pick"):
        db = IamDB("lsa", storage_options=SSD_100G.storage_options(),
                   engine_options=IamOptions(key_size=KEY_SIZE))
        if label == "worst-pick":
            # Swap the combine policy in place (same options, same runtime).
            db.engine._combine_one = _WorstPickTree._combine_one.__get__(db.engine)
        hash_load(db, n, quiesce=False)
        out[label] = {
            "splits": db.engine.splits,
            "combines": db.engine.combines,
            "wa": db.write_amplification(),
            "max_flush_fanout": db.engine.max_flush_fanout,
        }
        db.close()
    return out


def test_combine_policy_limits_splits(benchmark):
    out = run_once(benchmark, _measure)
    rows = [[k, d["combines"], d["splits"], d["max_flush_fanout"],
             round(d["wa"], 2)] for k, d in out.items()]
    table = format_table(["policy", "combines", "splits", "max fan-out", "WA"],
                         rows, title="Ablation (measured): combine candidate policy")
    save_result("ablation_combine", table)
    benchmark.extra_info["results"] = out

    good, bad = out["tcn-policy"], out["worst-pick"]
    # The Tcn policy never does worse on splits or write amplification.
    assert good["splits"] <= bad["splits"]
    assert good["wa"] <= bad["wa"] * 1.05
